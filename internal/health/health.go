// Package health is the index watchdog: it periodically evaluates a
// fixed catalog of rules over the observer's instruments — writer-stall
// tail, epoch-chain depth, sealed-but-unapplied backlog, WAL growth
// since the last checkpoint, latch-stall storms, and convergence
// stagnation — and reports readiness as a structured per-rule verdict
// with the evidence values that produced it.
//
// The watchdog is the semantic layer above the raw metrics: a histogram
// tells you the writer-stall p99 is 80ms; the watchdog tells you that
// is degraded, why, and since when. Rule transitions are recorded in
// the flight recorder (EvHealth events), so "when did it go bad?" is
// answerable after the fact, and the facade serves the latest Report
// at /health with readiness semantics (HTTP 503 while degraded).
//
// Evaluation is cheap (histogram snapshots and a few gauge loads) and
// allocation is confined to the Report, so Eval can also run
// synchronously on every /health request — probes always see fresh
// state, not a stale ticker result.
package health

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/metrics"
)

// Status is a rule or report verdict.
type Status string

const (
	// OK means the rule's thresholds hold.
	OK Status = "ok"
	// Degraded means the rule fired; the report carries the evidence.
	Degraded Status = "degraded"
)

// Rule names, in evaluation (and flight-recorder ordinal) order.
const (
	RuleWriterStall   = "writer-stall-p99"
	RuleEpochChain    = "epoch-chain-depth"
	RuleSealedBacklog = "sealed-unapplied-backlog"
	RuleWALGrowth     = "wal-since-checkpoint"
	RuleLatchStorm    = "latch-stall-storm"
	RuleConvergence   = "convergence-stagnation"
)

// Options tunes the watchdog thresholds. The zero value uses the
// defaults noted per field.
type Options struct {
	// Interval is the background evaluation period (default 5s;
	// negative disables the background loop — Eval still works on
	// demand, which is how /health stays accurate without a ticker).
	Interval time.Duration
	// WriterStallP99 degrades RuleWriterStall when the writer-park p99
	// reaches it (default 100ms).
	WriterStallP99 time.Duration
	// MaxEpochChain degrades RuleEpochChain when any shard's epoch
	// chain exceeds this many files (default 32).
	MaxEpochChain int64
	// MaxSealedUnapplied degrades RuleSealedBacklog when the total
	// sealed-but-unapplied epoch files exceed it (default 64).
	MaxSealedUnapplied int64
	// MaxWALBytes degrades RuleWALGrowth when WAL bytes since the last
	// checkpoint exceed it (default 256 MiB).
	MaxWALBytes int64
	// LatchStallsPerSec degrades RuleLatchStorm when the latch-stall
	// rate between evaluations exceeds it (default 1000/s).
	LatchStallsPerSec float64
	// StagnationWindows is how many trailing decay-series points the
	// convergence rule examines (default 8; the rule never fires with
	// fewer points recorded).
	StagnationWindows int
	// StagnationMinRows is the mean rows-touched floor below which the
	// index counts as converged regardless of trend (default 4096).
	StagnationMinRows int64
}

func (o Options) withDefaults() Options {
	if o.Interval == 0 {
		o.Interval = 5 * time.Second
	}
	if o.WriterStallP99 <= 0 {
		o.WriterStallP99 = 100 * time.Millisecond
	}
	if o.MaxEpochChain <= 0 {
		o.MaxEpochChain = 32
	}
	if o.MaxSealedUnapplied <= 0 {
		o.MaxSealedUnapplied = 64
	}
	if o.MaxWALBytes <= 0 {
		o.MaxWALBytes = 256 << 20
	}
	if o.LatchStallsPerSec <= 0 {
		o.LatchStallsPerSec = 1000
	}
	if o.StagnationWindows <= 0 {
		o.StagnationWindows = 8
	}
	if o.StagnationMinRows <= 0 {
		o.StagnationMinRows = 4096
	}
	return o
}

// RuleResult is one rule's verdict with its evidence values.
type RuleResult struct {
	// Rule is the rule's catalog name.
	Rule string `json:"rule"`
	// Status is ok or degraded.
	Status Status `json:"status"`
	// Reason explains a degraded verdict ("" when ok).
	Reason string `json:"reason,omitempty"`
	// Evidence carries the measured values and thresholds the verdict
	// derives from (always present, so a scraper can graph the margin
	// while the rule is still ok).
	Evidence map[string]int64 `json:"evidence"`
}

// Report is one full watchdog evaluation.
type Report struct {
	// Status is Degraded when any rule fired.
	Status Status `json:"status"`
	// When is the evaluation time.
	When time.Time `json:"when"`
	// Rules holds every rule's verdict in catalog order.
	Rules []RuleResult `json:"rules"`
}

// OK reports whether every rule passed.
func (r *Report) OK() bool { return r.Status == OK }

// DepthFunc samples the engine state the observer cannot see on its
// own: the longest per-shard epoch chain and the total
// sealed-but-unapplied epoch files.
type DepthFunc func() (maxEpochChain, sealedUnapplied int64)

// Watchdog evaluates the rule catalog over one index's observer. Use
// New, then Start for background evaluation; Eval works regardless.
type Watchdog struct {
	opts  Options
	ob    *metrics.Observer
	depth DepthFunc

	last atomic.Pointer[Report]

	mu         sync.Mutex // serializes Eval (rate bookkeeping + transitions)
	prevStalls int64
	prevWhen   time.Time
	wasBad     [6]bool

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a watchdog over ob. depth may be nil (the epoch rules
// then evaluate against zero depths and always pass).
func New(opts Options, ob *metrics.Observer, depth DepthFunc) *Watchdog {
	return &Watchdog{
		opts:  opts.withDefaults(),
		ob:    ob,
		depth: depth,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the background evaluation loop (no-op when the
// interval is negative). Safe to call once; pair with Stop.
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		if w.opts.Interval < 0 {
			close(w.done)
			return
		}
		go func() {
			defer close(w.done)
			t := time.NewTicker(w.opts.Interval)
			defer t.Stop()
			for {
				select {
				case <-w.stop:
					return
				case <-t.C:
					w.Eval()
				}
			}
		}()
	})
}

// Stop terminates the background loop and waits for it to exit.
// Safe to call without Start and to call twice.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.startOnce.Do(func() { close(w.done) }) // never started: nothing to wait for
	<-w.done
}

// Last returns the most recent report, evaluating once if none exists
// yet.
func (w *Watchdog) Last() Report {
	if r := w.last.Load(); r != nil {
		return *r
	}
	return w.Eval()
}

// Eval runs the full rule catalog now, publishes the report, refreshes
// the epoch-depth gauges, and records rule transitions in the flight
// recorder.
func (w *Watchdog) Eval() Report {
	w.mu.Lock()
	defer w.mu.Unlock()

	now := time.Now()
	sum := w.ob.Summary()
	var maxChain, sealed int64
	if w.depth != nil {
		maxChain, sealed = w.depth()
	}
	w.ob.SetEpochDepth(maxChain, sealed)
	walBytes, walRecs := w.ob.WALSince()

	// Latch-stall rate since the previous evaluation.
	var stallRate float64
	if !w.prevWhen.IsZero() {
		if dt := now.Sub(w.prevWhen).Seconds(); dt > 0 {
			stallRate = float64(sum.LatchStalls-w.prevStalls) / dt
		}
	}
	w.prevStalls = sum.LatchStalls
	w.prevWhen = now

	rep := Report{Status: OK, When: now, Rules: make([]RuleResult, 0, 6)}
	add := func(rule string, bad bool, reason string, ev map[string]int64) {
		r := RuleResult{Rule: rule, Status: OK, Evidence: ev}
		if bad {
			r.Status = Degraded
			r.Reason = reason
			rep.Status = Degraded
		}
		i := len(rep.Rules)
		rep.Rules = append(rep.Rules, r)
		if bad != w.wasBad[i] {
			w.wasBad[i] = bad
			w.ob.RecordHealth(int64(i), bad)
		}
	}

	add(RuleWriterStall,
		sum.WriterStallP99 >= w.opts.WriterStallP99,
		fmt.Sprintf("writer-stall p99 %v >= %v", sum.WriterStallP99, w.opts.WriterStallP99),
		map[string]int64{
			"p99_ns":       int64(sum.WriterStallP99),
			"threshold_ns": int64(w.opts.WriterStallP99),
			"stalls":       sum.WriterStalls,
		})

	add(RuleEpochChain,
		maxChain > w.opts.MaxEpochChain,
		fmt.Sprintf("longest epoch chain %d > %d", maxChain, w.opts.MaxEpochChain),
		map[string]int64{"max_chain": maxChain, "threshold": w.opts.MaxEpochChain})

	add(RuleSealedBacklog,
		sealed > w.opts.MaxSealedUnapplied,
		fmt.Sprintf("sealed-unapplied epochs %d > %d", sealed, w.opts.MaxSealedUnapplied),
		map[string]int64{"sealed_unapplied": sealed, "threshold": w.opts.MaxSealedUnapplied})

	add(RuleWALGrowth,
		walBytes > w.opts.MaxWALBytes,
		fmt.Sprintf("WAL grew %d bytes since last checkpoint (> %d)", walBytes, w.opts.MaxWALBytes),
		map[string]int64{
			"bytes_since_checkpoint":   walBytes,
			"records_since_checkpoint": walRecs,
			"threshold_bytes":          w.opts.MaxWALBytes,
		})

	add(RuleLatchStorm,
		stallRate > w.opts.LatchStallsPerSec,
		fmt.Sprintf("latch stalls at %.0f/s > %.0f/s", stallRate, w.opts.LatchStallsPerSec),
		map[string]int64{
			"stalls_per_sec": int64(stallRate),
			"threshold":      int64(w.opts.LatchStallsPerSec),
			"stalls_total":   sum.LatchStalls,
		})

	series := w.ob.ConvergenceSeries()
	stag, early, late := stagnating(series, w.opts.StagnationWindows, w.opts.StagnationMinRows)
	add(RuleConvergence, stag,
		fmt.Sprintf("rows touched per query not decaying (%d -> %d over %d windows)",
			early, late, w.opts.StagnationWindows),
		map[string]int64{
			"early_mean_rows": early,
			"late_mean_rows":  late,
			"min_rows":        w.opts.StagnationMinRows,
			"windows":         int64(len(series)),
		})

	w.last.Store(&rep)
	return rep
}

// stagnating detects a non-decaying rows-touched series: over the last
// `windows` points, the late-half mean must have dropped below 80% of
// the early-half mean (or under minRows outright) to count as
// converging. Returns the two half-means as evidence.
func stagnating(series []int64, windows int, minRows int64) (bool, int64, int64) {
	if len(series) < windows || windows < 2 {
		return false, 0, 0
	}
	tail := series[len(series)-windows:]
	half := windows / 2
	var a, b int64
	for _, v := range tail[:half] {
		a += v
	}
	for _, v := range tail[half:] {
		b += v
	}
	early := a / int64(half)
	late := b / int64(len(tail)-half)
	if late <= minRows {
		return false, early, late
	}
	return late*10 >= early*8, early, late
}
