package adaptix_test

import (
	"os"
	"testing"
)

// TestObsOverheadGuard is the CI overhead gate: an attached observer
// with tracing disabled (the default state of every Index) must cost
// at most 5% over running with no observer at all, on the
// steady-state query benchmark. Timing comparisons are inherently
// noisy, so the guard takes the minimum of several benchmark runs per
// variant (minimum, not mean: noise only ever adds time) and is gated
// behind OBS_OVERHEAD_GUARD=1 so ordinary `go test` runs stay fast and
// deterministic.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GUARD") == "" {
		t.Skip("set OBS_OVERHEAD_GUARD=1 to run the observability overhead gate")
	}
	const runs = 5
	minNs := func(f func(b *testing.B)) float64 {
		best := 0.0
		for i := 0; i < runs; i++ {
			r := testing.Benchmark(f)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	off := minNs(BenchmarkObsOverhead_Off)
	disabled := minNs(BenchmarkObsOverhead_Disabled)
	enabled := minNs(BenchmarkObsOverhead_Enabled)
	delta := (disabled - off) / off
	t.Logf("off %.0f ns/op, disabled %.0f ns/op (%+.2f%%), enabled %.0f ns/op (%+.2f%%, informational)",
		off, disabled, 100*delta, enabled, 100*(enabled-off)/off)
	if delta > 0.05 {
		t.Fatalf("disabled-path observability overhead %.2f%% exceeds the 5%% budget", 100*delta)
	}
}
