package avltree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"adaptix/internal/workload"
)

// checkInvariants verifies AVL balance and BST ordering; returns the
// number of nodes.
func checkInvariants[V any](t *testing.T, tr *Tree[V]) int {
	t.Helper()
	var walk func(n *node[V], min, max int64) int
	walk = func(n *node[V], min, max int64) int {
		if n == nil {
			return 0
		}
		if n.key <= min || n.key >= max {
			t.Fatalf("BST violation: key %d outside (%d, %d)", n.key, min, max)
		}
		hl, hr := height(n.left), height(n.right)
		if n.height != 1+maxInt(hl, hr) {
			t.Fatalf("stale height at key %d", n.key)
		}
		if bf := hl - hr; bf < -1 || bf > 1 {
			t.Fatalf("imbalance %d at key %d", bf, n.key)
		}
		return 1 + walk(n.left, min, n.key) + walk(n.right, n.key, max)
	}
	return walk(tr.root, math.MinInt64, math.MaxInt64)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestInsertGetDelete(t *testing.T) {
	tr := &Tree[string]{}
	if _, ok := tr.Get(1); ok {
		t.Fatal("empty tree Get returned ok")
	}
	if !tr.Insert(10, "ten") || !tr.Insert(5, "five") || !tr.Insert(20, "twenty") {
		t.Fatal("fresh inserts should report added")
	}
	if tr.Insert(10, "TEN") {
		t.Fatal("replacing insert reported added")
	}
	if v, ok := tr.Get(10); !ok || v != "TEN" {
		t.Fatalf("Get(10) = %q, %v", v, ok)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if !tr.Delete(5) {
		t.Fatal("Delete(5) failed")
	}
	if tr.Delete(5) {
		t.Fatal("double Delete(5) succeeded")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	checkInvariants(t, tr)
}

func TestSequentialInsertStaysBalanced(t *testing.T) {
	tr := &Tree[int]{}
	const n = 4096
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), i)
	}
	if got := checkInvariants(t, tr); got != n {
		t.Fatalf("node count %d, want %d", got, n)
	}
	// AVL height bound: 1.44*log2(n+2).
	if h := tr.Height(); float64(h) > 1.44*math.Log2(n+2)+1 {
		t.Fatalf("height %d exceeds AVL bound", h)
	}
}

func TestFloorCeiling(t *testing.T) {
	tr := &Tree[int]{}
	for _, k := range []int64{10, 20, 30, 40} {
		tr.Insert(k, int(k))
	}
	cases := []struct {
		q        int64
		floorKey int64
		floorOK  bool
		ceilKey  int64
		ceilOK   bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{40, 40, true, 40, true},
		{45, 40, true, 0, false},
	}
	for _, c := range cases {
		k, _, ok := tr.Floor(c.q)
		if ok != c.floorOK || (ok && k != c.floorKey) {
			t.Fatalf("Floor(%d) = %d,%v want %d,%v", c.q, k, ok, c.floorKey, c.floorOK)
		}
		k, _, ok = tr.Ceiling(c.q)
		if ok != c.ceilOK || (ok && k != c.ceilKey) {
			t.Fatalf("Ceiling(%d) = %d,%v want %d,%v", c.q, k, ok, c.ceilKey, c.ceilOK)
		}
	}
}

func TestMinMaxAscendKeys(t *testing.T) {
	tr := &Tree[int]{}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	input := []int64{7, 3, 9, 1, 5, 8, 2}
	for _, k := range input {
		tr.Insert(k, int(k))
	}
	if k, _, _ := tr.Min(); k != 1 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 9 {
		t.Fatalf("Max = %d", k)
	}
	keys := tr.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("Keys not sorted: %v", keys)
	}
	if len(keys) != len(input) {
		t.Fatalf("Keys len %d, want %d", len(keys), len(input))
	}
	// Early-terminating Ascend.
	var visited int
	tr.Ascend(func(k int64, _ int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("Ascend visited %d, want 3", visited)
	}
}

func TestRandomOpsAgainstReferenceMap(t *testing.T) {
	tr := &Tree[int64]{}
	ref := make(map[int64]int64)
	r := workload.NewRNG(77)
	const ops = 20000
	for i := 0; i < ops; i++ {
		k := r.Int64n(2000)
		switch r.Intn(3) {
		case 0, 1:
			tr.Insert(k, k*10)
			ref[k] = k * 10
		case 2:
			gotDel := tr.Delete(k)
			_, had := ref[k]
			if gotDel != had {
				t.Fatalf("Delete(%d) = %v, ref had %v", k, gotDel, had)
			}
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len %d vs ref %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	if n := checkInvariants(t, tr); n != len(ref) {
		t.Fatalf("invariant walk count %d vs ref %d", n, len(ref))
	}
}

func TestFloorMatchesSortedSliceProperty(t *testing.T) {
	f := func(keys []int64, probes []int64) bool {
		tr := &Tree[struct{}]{}
		uniq := map[int64]bool{}
		for _, k := range keys {
			tr.Insert(k, struct{}{})
			uniq[k] = true
		}
		sorted := make([]int64, 0, len(uniq))
		for k := range uniq {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range probes {
			// Reference floor via binary search.
			i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > q })
			wantOK := i > 0
			k, _, ok := tr.Floor(q)
			if ok != wantOK {
				return false
			}
			if ok && k != sorted[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTwoChildrenNode(t *testing.T) {
	tr := &Tree[int]{}
	for _, k := range []int64{50, 30, 70, 20, 40, 60, 80} {
		tr.Insert(k, int(k))
	}
	if !tr.Delete(50) { // root with two children
		t.Fatal("Delete(50) failed")
	}
	if _, ok := tr.Get(50); ok {
		t.Fatal("50 still present")
	}
	for _, k := range []int64{30, 70, 20, 40, 60, 80} {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("key %d lost by delete", k)
		}
	}
	checkInvariants(t, tr)
}
