// Package column implements the column-store storage and access model
// of the paper's §5.1 (Figure 6): every attribute of a table is stored
// separately as a dense array; all columns of a table are aligned so
// that all attribute values of tuple i appear at position i of their
// respective columns; query processing touches one column at a time in
// bulk, operator-at-a-time mode (select → fetch → aggregate).
package column

import (
	"fmt"

	"adaptix/internal/crackindex"
	"adaptix/internal/sideways"
)

// Column is one attribute stored as a dense array of int64 values.
type Column struct {
	name string
	vals []int64
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Len returns the number of values.
func (c *Column) Len() int { return len(c.vals) }

// Values returns the backing array. Callers must treat it as
// read-only: the base column is immutable, all reorganization happens
// in the cracker index's auxiliary copy (paper §5.2).
func (c *Column) Values() []int64 { return c.vals }

// Fetch appends the values at the given aligned positions to dst,
// implementing the positional fetch operator of the Figure 6 plan.
func (c *Column) Fetch(dst []int64, ids []uint32) []int64 {
	for _, id := range ids {
		dst = append(dst, c.vals[id])
	}
	return dst
}

// Table is a set of aligned columns.
type Table struct {
	name string
	n    int
	cols map[string]*Column
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{name: name, n: -1, cols: make(map[string]*Column)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rows returns the number of tuples (0 for an empty table).
func (t *Table) Rows() int {
	if t.n < 0 {
		return 0
	}
	return t.n
}

// AddColumn registers vals as a new column. All columns of a table
// must be aligned: adding a column of a different length is an error.
func (t *Table) AddColumn(name string, vals []int64) error {
	if _, dup := t.cols[name]; dup {
		return fmt.Errorf("column: table %s already has column %s", t.name, name)
	}
	if t.n >= 0 && len(vals) != t.n {
		return fmt.Errorf("column: table %s column %s has %d values, want %d",
			t.name, name, len(vals), t.n)
	}
	t.n = len(vals)
	t.cols[name] = &Column{name: name, vals: vals}
	return nil
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("column: table %s has no column %s", t.name, name)
	}
	return c, nil
}

// Executor evaluates the paper's bulk, operator-at-a-time query plans
// over a table, using adaptive indexing (database cracking) for the
// select operator. Cracker indexes are created lazily per column and
// tracked in a registry guarded by a global latch (paper §5.3).
// Multi-column plans can alternatively use sideways cracking maps
// (SumSidewaysWhere), which self-organize (selection, projection)
// pairs and avoid the positional fetch entirely.
type Executor struct {
	tab      *Table
	reg      *crackindex.Registry
	sideways *sideways.Registry
	opts     crackindex.Options
}

// NewExecutor creates an executor over tab; opts configures the
// cracker indexes it creates.
func NewExecutor(tab *Table, opts crackindex.Options) *Executor {
	return &Executor{
		tab:      tab,
		reg:      crackindex.NewRegistry(),
		sideways: sideways.NewRegistry(),
		opts:     opts,
	}
}

// index returns (creating if needed) the cracker index for col.
func (e *Executor) index(col string) (*crackindex.Index, error) {
	c, err := e.tab.Column(col)
	if err != nil {
		return nil, err
	}
	return e.reg.GetOrCreate(e.tab.name+"."+col, c.Values(), e.opts), nil
}

// Index exposes the cracker index of a column (for stats inspection).
func (e *Executor) Index(col string) (*crackindex.Index, bool) {
	return e.reg.Get(e.tab.name + "." + col)
}

// CountWhere evaluates: select count(*) from t where lo <= selCol < hi
// (query type Q1). The selection cracks selCol as a side effect.
func (e *Executor) CountWhere(selCol string, lo, hi int64) (int64, crackindex.OpStats, error) {
	ix, err := e.index(selCol)
	if err != nil {
		return 0, crackindex.OpStats{}, err
	}
	n, st := ix.Count(lo, hi)
	return n, st, nil
}

// SumWhere evaluates: select sum(selCol) from t where lo <= selCol < hi
// (query type Q2): selection/cracking plus aggregation on the same
// column.
func (e *Executor) SumWhere(selCol string, lo, hi int64) (int64, crackindex.OpStats, error) {
	ix, err := e.index(selCol)
	if err != nil {
		return 0, crackindex.OpStats{}, err
	}
	s, st := ix.Sum(lo, hi)
	return s, st, nil
}

// SumSidewaysWhere evaluates select sum(aggCol) where lo <= selCol < hi
// through a sideways-cracking map M(selCol, aggCol): the map carries
// the aggregation values along every crack, so once refined the plan
// reads one contiguous run of tail values instead of doing a
// positional fetch (reference [22]; see internal/sideways).
func (e *Executor) SumSidewaysWhere(aggCol, selCol string, lo, hi int64) (int64, sideways.OpStats, error) {
	sel, err := e.tab.Column(selCol)
	if err != nil {
		return 0, sideways.OpStats{}, err
	}
	agg, err := e.tab.Column(aggCol)
	if err != nil {
		return 0, sideways.OpStats{}, err
	}
	skipPolicy := sideways.Wait
	if e.opts.OnConflict == crackindex.Skip {
		skipPolicy = sideways.Skip
	}
	m := e.sideways.GetOrCreate(selCol, aggCol, sel.Values(), agg.Values(),
		sideways.Options{OnConflict: skipPolicy})
	s, st := m.SumTargetWhere(lo, hi)
	return s, st, nil
}

// SidewaysMaps returns the number of cracker maps materialized.
func (e *Executor) SidewaysMaps() int { return e.sideways.Len() }

// SumFetchWhere evaluates the full Figure 6 plan:
// select sum(aggCol) from t where lo <= selCol < hi.
// The select operator cracks selCol and produces qualifying rowIDs;
// the fetch operator positionally collects aggCol values; the
// aggregation sums them in one go. Each column is only used for a
// brief part of the plan, which is why short-term latches suffice
// (paper §5.1).
func (e *Executor) SumFetchWhere(aggCol, selCol string, lo, hi int64) (int64, crackindex.OpStats, error) {
	ix, err := e.index(selCol)
	if err != nil {
		return 0, crackindex.OpStats{}, err
	}
	agg, err := e.tab.Column(aggCol)
	if err != nil {
		return 0, crackindex.OpStats{}, err
	}
	ids, st := ix.SelectRowIDs(lo, hi)
	// The base columns are immutable, so the fetch and the final
	// aggregation need no latches at all: column A's latch was already
	// released when the select operator finished (Figure 6 discussion).
	var sum int64
	for _, id := range ids {
		sum += agg.Values()[id]
	}
	return sum, st, nil
}
