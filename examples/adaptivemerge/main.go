// Adaptivemerge: adaptive merging and hybrid crack-sort convergence.
//
// Compares the three adaptive methods' life cycles on the same query
// stream: database cracking converges lazily; adaptive merging pays
// run-sorting up front and converges fast; the hybrid splits the
// difference. Also shows the structural WAL: merge steps log tiny
// structural records, never index contents, and run as instantly
// committed system transactions.
//
// Run: go run ./examples/adaptivemerge
package main

import (
	"fmt"
	"time"

	"adaptix"
)

func main() {
	const rows = 1 << 20
	data := adaptix.NewUniqueDataset(rows, 5)
	qs := adaptix.UniformQueries(adaptix.SumQuery, data.Domain, 0.01, 3, 64)

	log := adaptix.NewStructuralLog()
	tm := adaptix.NewTxnManager()

	crack := adaptix.NewCrackEngine(adaptix.NewCrackedColumn(data.Values, adaptix.CrackOptions{
		Latching: adaptix.LatchPiece,
	}))
	merge := adaptix.NewMergeIndex(data.Values, adaptix.MergeOptions{
		RunSize: 1 << 16, Log: log, TxnMgr: tm,
	})
	hybrid := adaptix.NewHybridIndex(data.Values, adaptix.HybridOptions{
		PartitionSize: 1 << 16,
	})

	fmt.Printf("%-8s %12s %12s %12s\n", "query", "crack", "amerge", "hybrid")
	engines := []adaptix.Engine{crack, merge, hybrid}
	for i, q := range qs {
		var times [3]time.Duration
		for e := range engines {
			start := time.Now()
			engines[e].Sum(q.Lo, q.Hi)
			times[e] = time.Since(start)
		}
		if i < 4 || (i+1)%16 == 0 {
			fmt.Printf("%-8d %12v %12v %12v\n", i+1,
				times[0].Round(time.Microsecond),
				times[1].Round(time.Microsecond),
				times[2].Round(time.Microsecond))
		}
	}

	fmt.Printf("\nadaptive merging: %d runs, %d merge steps, %d records moved, %d snapshot hits\n",
		merge.NumRuns(), merge.MergeSteps(), merge.MovedRecords(), merge.SnapshotHits())
	fmt.Printf("hybrid crack-sort: %d partitions, %d extensions, final holds %d values\n",
		hybrid.NumPartitions(), hybrid.Extensions(), hybrid.FinalSize())

	started, finished := tm.Counts()
	fmt.Printf("\nsystem transactions: %d started, %d instantly committed\n", started, finished)
	fmt.Printf("structural WAL: %d records (runs + merge steps), no index contents logged:\n", log.Len())
	for _, r := range log.Records()[:5] {
		fmt.Printf("  lsn=%-3d %-12s %s A=%d B=%d C=%d\n", r.LSN, r.Kind, r.Object, r.A, r.B, r.C)
	}
	fmt.Println("  ...")
}
