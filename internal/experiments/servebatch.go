package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adaptix/internal/crackindex"
	"adaptix/internal/ingest"
	"adaptix/internal/metrics"
	"adaptix/internal/serve"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// qctx is the uncancellable context the wire drivers use.
var qctx = context.Background()

// ServeBatchingReport is the serving-front batching figure: the same
// crack-method hot-shard workload driven over the wire against a
// server with the batch scheduler enabled vs disabled, plus the
// admission-control fast-reject latency.
type ServeBatchingReport struct {
	// Clients is the connection count of the sweep point (16: the
	// acceptance configuration).
	Clients int
	// QPSBatched and QPSUnbatched are served queries/second with the
	// scheduling window at its default vs disabled.
	QPSBatched   float64
	QPSUnbatched float64
	// Speedup is QPSBatched / QPSUnbatched.
	Speedup float64
	// CoalesceRate is the fraction of batched requests answered by a
	// batch-mate's execution (exact-duplicate bounds, executed once).
	CoalesceRate float64
	// BatchP50 and BatchP99 are the batched leg's batch-size quantiles.
	BatchP50, BatchP99 int64
	// RejectP99 is the 99th-percentile round-trip of an over-budget
	// fast reject (the no-queueing-collapse guarantee: must stay
	// far under the served-path latency — acceptance: < 1ms).
	RejectP99 time.Duration
}

// serveLeg runs the hot-shard mix over the wire and returns served
// qps plus the server's final stats. The workload concentrates on one
// hot region: a small pool of distinct bounds (exact duplicates
// across clients) and differential writes into the same region, so
// every query pays the hot shard's epoch chain and piece latches —
// where the paper says contention lives, and what shared-scan
// batching amortizes.
func serveLeg(d *workload.Dataset, cfg Config, window time.Duration, clients, depth, ops int) (float64, serve.Stats) {
	col := shard.New(d.Values, shard.Options{
		Shards: 4, Seed: cfg.Seed,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	g := ingest.New(col, ingest.Options{
		// A high apply threshold keeps differential epochs live in the
		// hot shard, so queries do real per-request work.
		ApplyThreshold: 1 << 20, CheckEvery: 1 << 20,
	})
	g.Start()
	defer g.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := serve.New(serve.Backend{Col: col, Ing: g}, ln, serve.Options{
		Window:      window,
		MaxInFlight: 1 << 16,
		ConnQuota:   1 << 12,
	})
	defer srv.Close()

	// Hot region: the lowest 1/16th of the domain; 8 distinct bounds
	// shared by every client.
	hot := d.Domain / 16
	gen := workload.NewUniform(workload.Count, hot, 0.25, cfg.Seed+7)
	pool := make([]workload.Query, 8)
	for i := range pool {
		pool[i] = gen.Next()
		if i%2 == 1 {
			pool[i].Kind = workload.Sum
		}
	}

	var served atomic.Int64
	var wg sync.WaitGroup
	perWorker := ops / (clients * depth)
	start := time.Now()
	for c := 0; c < clients; c++ {
		cl, err := serve.Dial(srv.Addr().String())
		if err != nil {
			panic(err)
		}
		defer cl.Close()
		for w := 0; w < depth; w++ {
			wg.Add(1)
			go func(c, w int) {
				defer wg.Done()
				r := workload.NewRNG(cfg.Seed + uint64(c*64+w))
				for i := 0; i < perWorker; i++ {
					// 1-in-8 ops is a write into the hot region, keeping
					// its epoch chain warm; the rest draw from the shared
					// bound pool.
					if r.Intn(8) == 0 {
						if err := cl.Insert(qctx, r.Int64n(hot)); err != nil {
							panic(err)
						}
						served.Add(1)
						continue
					}
					q := pool[r.Intn(len(pool))]
					var err error
					if q.Kind == workload.Count {
						_, err = cl.Count(qctx, q.Lo, q.Hi)
					} else {
						_, err = cl.Sum(qctx, q.Lo, q.Hi)
					}
					if err != nil {
						panic(err)
					}
					served.Add(1)
				}
			}(c, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(served.Load()) / elapsed, srv.Stats()
}

// rejectLatency measures the admission-control fast-reject round trip:
// a budget-1 server with one request parked in a long batching window,
// then n sequential over-budget probes — every probe must come back
// StatusOverloaded without queueing behind the window.
func rejectLatency(d *workload.Dataset, n int) time.Duration {
	col := shard.New(d.Values, shard.Options{Shards: 1, Seed: 1,
		Index: crackindex.Options{Latching: crackindex.LatchPiece}})
	g := ingest.New(col, ingest.Options{})
	g.Start()
	defer g.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := serve.New(serve.Backend{Col: col, Ing: g}, ln, serve.Options{
		Window: 500 * time.Millisecond, MaxInFlight: 1, ConnQuota: 64,
	})
	defer srv.Close()
	cl, err := serve.Dial(srv.Addr().String())
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	// Park one admitted query in the window so the budget is full.
	go cl.Count(qctx, 0, 100)
	for srv.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}

	h := &metrics.Histogram{}
	for i := 0; i < n; i++ {
		t0 := time.Now()
		r, err := cl.Do(qctx, serve.Request{Op: serve.OpCount, Lo: 0, Hi: 100})
		if err != nil {
			panic(err)
		}
		if r.Status != serve.StatusOverloaded {
			panic(fmt.Sprintf("probe %d: status %s, want overloaded", i, r.Status))
		}
		h.RecordDuration(time.Since(t0))
	}
	s := h.Snapshot()
	return time.Duration(s.Quantile(0.99))
}

// ServeBatching runs the serving-front figure: batched vs unbatched
// qps at 16 pipelined connections on the crack-method hot-shard
// workload, plus the fast-reject latency. The expectation (the PR's
// acceptance bar) is batched >= 1.5x unbatched and reject p99 < 1ms.
func ServeBatching(cfg Config, w io.Writer) *ServeBatchingReport {
	cfg = cfg.Defaults()
	d := cfg.dataset()
	const clients, depth = 16, 16
	ops := cfg.Queries * clients
	if ops < clients*depth {
		ops = clients * depth
	}

	unbatched, _ := serveLeg(d, cfg, -1, clients, depth, ops)
	batched, bst := serveLeg(d, cfg, 0, clients, depth, ops)
	rep := &ServeBatchingReport{
		Clients:      clients,
		QPSBatched:   batched,
		QPSUnbatched: unbatched,
		CoalesceRate: bst.CoalesceRate,
		BatchP50:     bst.BatchP50,
		BatchP99:     bst.BatchP99,
		RejectP99:    rejectLatency(d, 256),
	}
	if unbatched > 0 {
		rep.Speedup = batched / unbatched
	}
	if w != nil {
		t := &metrics.Table{Header: []string{"leg", "qps", "coalesce", "batch p50", "batch p99"}}
		t.Add("unbatched", fmt.Sprintf("%.0f", rep.QPSUnbatched), "-", "-", "-")
		t.Add("batched", fmt.Sprintf("%.0f", rep.QPSBatched),
			fmt.Sprintf("%.2f", rep.CoalesceRate),
			fmt.Sprint(rep.BatchP50), fmt.Sprint(rep.BatchP99))
		fmt.Fprintf(w, "Serving front: shared-scan batching at %d pipelined connections (%d rows, %d ops/leg)\n%s",
			clients, cfg.Rows, ops, t)
		fmt.Fprintf(w, "speedup %.2fx; over-budget fast-reject p99 %s\n\n",
			rep.Speedup, metrics.FormatDuration(rep.RejectP99))
	}
	return rep
}
