// Command benchjson runs a small grid of query/update workload cells
// against the public Index API and writes one machine-readable JSON
// document — throughput plus the latency quantiles read from the
// always-on observability histograms — for CI trend tracking.
//
// Usage:
//
//	benchjson [-out BENCH_results.json] [-rows 262144] [-queries 1024] [-seed 42] [-repeat 1]
//
// Each cell builds a fresh index (adaptive state must not leak between
// cells), drives the query sequence across the cell's client count,
// and reports queries/sec over the wall-clock of the run and the
// p50/p99/p999 of the per-query critical-path histogram plus the
// Figure 15 wait-vs-crack p99 split. With -repeat N each cell runs N
// times and the best-throughput run is reported — min-of-N in time
// terms — which damps scheduler noise when the numbers gate CI.
// Absolute numbers are machine-dependent; the JSON is for comparing
// runs on the same hardware.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adaptix"
)

// Cell is one workload configuration's result row.
type Cell struct {
	Name        string  `json:"name"`
	Method      string  `json:"method"`
	Clients     int     `json:"clients"`
	WritePct    int     `json:"write_pct"`
	Queries     int64   `json:"queries"`
	Writes      int64   `json:"writes"`
	Seconds     float64 `json:"seconds"`
	QPS         float64 `json:"qps"`
	CriticalP50 int64   `json:"critical_p50_ns"`
	CriticalP99 int64   `json:"critical_p99_ns"`
	CritP999    int64   `json:"critical_p999_ns"`
	WaitP99     int64   `json:"wait_p99_ns"`
	CrackP99    int64   `json:"crack_p99_ns"`
	LatencyP99  int64   `json:"latency_p99_ns"`
	WriterP99   int64   `json:"writer_stall_p99_ns"`
}

// Doc is the whole BENCH_results.json document.
type Doc struct {
	Rows      int    `json:"rows"`
	Queries   int    `json:"queries"`
	Seed      uint64 `json:"seed"`
	GoMaxProc int    `json:"gomaxprocs"`
	When      string `json:"when"`
	Cells     []Cell `json:"cells"`
}

func main() {
	out := flag.String("out", "BENCH_results.json", "output path")
	rows := flag.Int("rows", 1<<18, "base table size")
	queries := flag.Int("queries", 1024, "query sequence length per cell")
	seed := flag.Uint64("seed", 42, "workload seed")
	repeat := flag.Int("repeat", 1, "runs per cell; the best-throughput run is reported")
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	data := adaptix.NewUniqueDataset(*rows, *seed)
	doc := Doc{
		Rows: *rows, Queries: *queries, Seed: *seed,
		GoMaxProc: runtime.GOMAXPROCS(0),
		When:      time.Now().UTC().Format(time.RFC3339),
	}

	grid := []struct {
		method   adaptix.Method
		clients  int
		writePct int
	}{
		{adaptix.Crack, 1, 0},
		{adaptix.Crack, 4, 0},
		{adaptix.Crack, 8, 0},
		{adaptix.Crack, 4, 10},
		{adaptix.Crack, 4, 50},
		{adaptix.AMerge, 4, 0},
		{adaptix.Hybrid, 4, 0},
		{adaptix.Sort, 4, 0},
		{adaptix.Scan, 4, 0},
	}
	for _, g := range grid {
		var cell Cell
		for r := 0; r < *repeat; r++ {
			c, err := runCell(data.Values, *rows, *queries, *seed, g.method, g.clients, g.writePct)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", c.Name, err)
				os.Exit(1)
			}
			if r == 0 || c.QPS > cell.QPS {
				cell = c
			}
		}
		fmt.Printf("%-22s %10.0f q/s  p99 %s\n", cell.Name, cell.QPS,
			time.Duration(cell.CriticalP99))
		doc.Cells = append(doc.Cells, cell)
	}

	// The serving cell goes over the wire: a batched server in front of
	// the same index, 16 pipelined connections, 10% writes — guards the
	// whole serving front (framing, scheduler, admission) end to end.
	var served Cell
	for r := 0; r < *repeat; r++ {
		c, err := runServedCell(data.Values, *rows, *queries, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", c.Name, err)
			os.Exit(1)
		}
		if r == 0 || c.QPS > served.QPS {
			served = c
		}
	}
	fmt.Printf("%-22s %10.0f q/s  p99 %s\n", served.Name, served.QPS,
		time.Duration(served.CriticalP99))
	doc.Cells = append(doc.Cells, served)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cells)\n", *out, len(doc.Cells))
}

// runServedCell measures the serving front: the served/c16/w10 cell
// drives the query mix through 16 protocol connections against a
// batched server on a loopback listener. QPS counts wire round trips
// per second; the latency columns still read the engine-side
// histograms (the serving layer's own quantiles live in /snapshot).
func runServedCell(values []int64, rows, queries int, seed uint64) (Cell, error) {
	const clients, writePct = 16, 10
	c := Cell{
		Name:     fmt.Sprintf("served/c%d/w%d", clients, writePct),
		Method:   adaptix.Crack.String(),
		Clients:  clients,
		WritePct: writePct,
	}
	ix, err := adaptix.New(values,
		adaptix.WithMethod(adaptix.Crack),
		adaptix.WithShards(runtime.GOMAXPROCS(0)),
		adaptix.WithObservability(adaptix.ObsOptions{SampleEvery: 16}),
	)
	if err != nil {
		return c, err
	}
	defer ix.Close()
	srv, err := ix.ServeAddr("127.0.0.1:0", adaptix.ServeOptions{})
	if err != nil {
		return c, err
	}
	defer srv.Close()

	qs := adaptix.UniformQueries(adaptix.SumQuery, int64(rows), 0.001, seed+7, queries)
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	var wire atomic.Int64
	t0 := time.Now()
	for w := 0; w < clients; w++ {
		cl, err := adaptix.DialServe(srv.Addr().String())
		if err != nil {
			return c, err
		}
		defer cl.Close()
		wg.Add(1)
		go func(w int, cl *adaptix.ServeClient) {
			defer wg.Done()
			n := int64(0)
			for i := w; i < len(qs); i += clients {
				if i%100 < writePct {
					if err := cl.Insert(ctx, int64(rows+i)); err != nil {
						errc <- err
						return
					}
					n++
					continue
				}
				if _, err := cl.Sum(ctx, qs[i].Lo, qs[i].Hi); err != nil {
					errc <- err
					return
				}
				n++
			}
			wire.Add(n)
		}(w, cl)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return c, err
	}
	c.Seconds = time.Since(t0).Seconds()
	if c.Seconds > 0 {
		c.QPS = float64(wire.Load()) / c.Seconds
	}
	c.Queries = wire.Load()

	st := ix.Stats()
	c.Writes = st.Obs.Writes
	c.CriticalP50 = int64(st.Obs.CriticalPathP50)
	c.CriticalP99 = int64(st.Obs.CriticalPathP99)
	c.CritP999 = int64(st.Obs.CriticalPathP999)
	c.WaitP99 = int64(st.Obs.QueryWaitP99)
	c.CrackP99 = int64(st.Obs.QueryCrackP99)
	c.LatencyP99 = int64(st.Obs.QueryLatencyP99)
	c.WriterP99 = int64(st.Obs.WriterStallP99)
	return c, nil
}

func runCell(values []int64, rows, queries int, seed uint64, m adaptix.Method, clients, writePct int) (Cell, error) {
	c := Cell{
		Name:     fmt.Sprintf("%s/c%d/w%d", m, clients, writePct),
		Method:   m.String(),
		Clients:  clients,
		WritePct: writePct,
	}
	ix, err := adaptix.New(values,
		adaptix.WithMethod(m),
		adaptix.WithShards(runtime.GOMAXPROCS(0)),
		// Tracing on so the end-to-end latency histogram populates;
		// sampling keeps its cost off the measured path.
		adaptix.WithObservability(adaptix.ObsOptions{SampleEvery: 16}),
	)
	if err != nil {
		return c, err
	}
	defer ix.Close()

	qs := adaptix.UniformQueries(adaptix.SumQuery, int64(rows), 0.001, seed+7, queries)
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	t0 := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(qs); i += clients {
				if writePct > 0 && i%100 < writePct {
					if err := ix.Insert(ctx, int64(rows+i)); err != nil {
						errc <- err
						return
					}
					continue
				}
				if _, err := ix.Sum(ctx, qs[i].Lo, qs[i].Hi); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return c, err
	}
	c.Seconds = time.Since(t0).Seconds()

	st := ix.Stats()
	c.Queries = st.Obs.Queries
	c.Writes = st.Obs.Writes
	if c.Seconds > 0 {
		c.QPS = float64(c.Queries) / c.Seconds
	}
	c.CriticalP50 = int64(st.Obs.CriticalPathP50)
	c.CriticalP99 = int64(st.Obs.CriticalPathP99)
	c.CritP999 = int64(st.Obs.CriticalPathP999)
	c.WaitP99 = int64(st.Obs.QueryWaitP99)
	c.CrackP99 = int64(st.Obs.QueryCrackP99)
	c.LatencyP99 = int64(st.Obs.QueryLatencyP99)
	c.WriterP99 = int64(st.Obs.WriterStallP99)
	return c, nil
}
