package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// Small configuration so the whole suite stays fast; shape assertions
// are scale-invariant.
func testCfg() Config {
	return Config{Rows: 1 << 17, Queries: 128, Clients: []int{1, 2, 4}, Seed: 7}
}

// eventually retries a timing-shape assertion: `go test ./...` runs
// packages in parallel, so a single run can lose its CPUs mid-flight.
// The shape must hold in at least one of n attempts.
func eventually(t *testing.T, n int, check func() error) {
	t.Helper()
	var err error
	for i := 0; i < n; i++ {
		if err = check(); err == nil {
			return
		}
	}
	t.Fatal(err)
}

func TestFig11Shapes(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.Rows = 1 << 19 // widen the crack-vs-sort first-query margin
	eventually(t, 3, func() error {
		buf.Reset()
		rep := Fig11(cfg, &buf)
		for _, name := range []string{"scan", "sort", "crack"} {
			if len(rep.PerQuery[name]) != 10 || len(rep.RunningAvg[name]) != 10 {
				t.Fatalf("%s: wrong series lengths", name)
			}
		}
		// Sort pays hugely on query 1, then is near-free.
		if rep.PerQuery["sort"][0] < 10*rep.PerQuery["sort"][1] {
			return fmt.Errorf("sort first query %v not >> second %v",
				rep.PerQuery["sort"][0], rep.PerQuery["sort"][1])
		}
		// Crack's first query is cheaper than sort's.
		if rep.PerQuery["crack"][0] >= rep.PerQuery["sort"][0] {
			return fmt.Errorf("crack first query %v not cheaper than sort %v",
				rep.PerQuery["crack"][0], rep.PerQuery["sort"][0])
		}
		// Crack converges: last query far cheaper than its first.
		if rep.PerQuery["crack"][9] >= rep.PerQuery["crack"][0] {
			return fmt.Errorf("crack did not converge: q1=%v q10=%v",
				rep.PerQuery["crack"][0], rep.PerQuery["crack"][9])
		}
		return nil
	})
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Fatal("missing output header")
	}
}

func TestFig12Shapes(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.Rows = 1 << 19 // widen the crack-vs-scan margin beyond CI noise
	eventually(t, 3, func() error {
		buf.Reset()
		rep := Fig12(cfg, &buf)
		for _, name := range []string{"scan", "sort", "crack"} {
			if len(rep.Total[name]) != len(cfg.Clients) {
				t.Fatalf("%s: wrong sweep length", name)
			}
			for i, d := range rep.Total[name] {
				if d <= 0 {
					t.Fatalf("%s: non-positive total at %d", name, i)
				}
			}
		}
		// Cracking beats scanning in total time at every client count
		// (the paper's headline ordering).
		for i := range cfg.Clients {
			if rep.Total["crack"][i] >= rep.Total["scan"][i] {
				return fmt.Errorf("crack (%v) not faster than scan (%v) at %d clients",
					rep.Total["crack"][i], rep.Total["scan"][i], cfg.Clients[i])
			}
		}
		return nil
	})
	if !strings.Contains(buf.String(), "Figure 12") {
		t.Fatal("missing output header")
	}
}

func TestFig13Shapes(t *testing.T) {
	var buf bytes.Buffer
	rep := Fig13(testCfg(), &buf)
	if rep.Enabled <= 0 || rep.Disabled <= 0 {
		t.Fatal("non-positive totals")
	}
	// CC admin overhead must be small; allow generous slack for CI
	// noise (the paper reports <1%, cmd/figures at full scale ~2%).
	if rep.OverheadPct > 60 {
		t.Fatalf("CC overhead %.1f%% implausibly high", rep.OverheadPct)
	}
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Fatal("missing output header")
	}
}

func TestFig14Shapes(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.Rows = 1 << 19 // pieces must outweigh per-piece latch overhead
	cfg.Queries = 64
	cfg.Clients = []int{1, 4}
	eventually(t, 3, func() error {
		buf.Reset()
		rep := Fig14(cfg, &buf)
		panels := []string{"count/column", "count/piece", "sum/column", "sum/piece"}
		for _, p := range panels {
			if len(rep.Total[p]) != len(Fig14Selectivities) {
				t.Fatalf("%s: wrong selectivity rows", p)
			}
			for _, row := range rep.Total[p] {
				if len(row) != len(cfg.Clients) {
					t.Fatalf("%s: wrong client columns", p)
				}
			}
		}
		// The headline Figure 14 effect: for concurrent sum queries at
		// low selectivity (long read-latch windows), piece latches beat
		// column latches. The effect IS parallelism between cracking
		// and aggregation on different pieces, so it needs more than
		// one core — on a single-CPU machine only the panel mechanics
		// are asserted.
		if runtime.GOMAXPROCS(0) > 1 {
			si := len(Fig14Selectivities) - 1 // 90% selectivity
			ci := len(cfg.Clients) - 1        // most clients
			col := rep.Total["sum/column"][si][ci]
			pie := rep.Total["sum/piece"][si][ci]
			if pie >= col {
				return fmt.Errorf("piece latches (%v) not faster than column latches (%v) for concurrent low-selectivity sums",
					pie, col)
			}
		}
		return nil
	})
	if !strings.Contains(buf.String(), "Figure 14 panel sum/piece") {
		t.Fatal("missing output header")
	}
}

func TestFig15Shapes(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.Queries = 256
	rep := Fig15(cfg, &buf)
	if len(rep.CrackTime) != cfg.Queries || len(rep.WaitTime) != cfg.Queries {
		t.Fatal("wrong series length")
	}
	// Crack time decays strongly over the sequence (the adaptive
	// property under concurrency).
	if rep.CrackDecay >= 0.5 {
		t.Fatalf("crack time did not decay: ratio %.3f", rep.CrackDecay)
	}
	if !strings.Contains(buf.String(), "Figure 15") {
		t.Fatal("missing output header")
	}
}

func TestAblationsRun(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.Queries = 64
	rep := Ablations(cfg, 4, &buf)
	if len(rep.Order) < 8 {
		t.Fatalf("only %d ablation variants", len(rep.Order))
	}
	for _, name := range rep.Order {
		if rep.Total[name] <= 0 {
			t.Fatalf("%s: non-positive total", name)
		}
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Fatal("missing output header")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Rows != 1<<20 || c.Queries != 1024 || len(c.Clients) != 6 || c.Seed != 42 {
		t.Fatalf("bad defaults: %+v", c)
	}
	c2 := Config{Rows: 7, Queries: 9, Clients: []int{3}, Seed: 1}.Defaults()
	if c2.Rows != 7 || c2.Queries != 9 || c2.Clients[0] != 3 || c2.Seed != 1 {
		t.Fatal("defaults overwrote explicit values")
	}
}

func TestReadWriteMixRuns(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.Rows = 1 << 14
	cfg.Queries = 96
	rep := ReadWriteMix(cfg, &buf)
	if len(rep.Cells) != 9 {
		t.Fatalf("%d cells, want 9 (3 write fractions x 3 client counts)", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Elapsed <= 0 || c.Throughput <= 0 {
			t.Fatalf("cell %+v: non-positive timing", c)
		}
		if c.WriteFraction == 0 && (c.Applied != 0 || c.Splits != 0) {
			t.Fatalf("read-only cell performed structural ops: %+v", c)
		}
	}
	if !strings.Contains(buf.String(), "Read/write mix") {
		t.Fatal("missing output header")
	}
}

func TestWriterCollisionShapes(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.Rows = 1 << 16
	cfg.Queries = 512
	rep := WriterCollision(cfg, &buf)
	for _, c := range []CollisionCell{rep.Epoch, rep.Parked} {
		if c.Inserts == 0 || c.P50 <= 0 {
			t.Fatalf("degenerate cell: %+v", c)
		}
		if c.Applies == 0 {
			t.Fatalf("forcer committed no rebuilds (parked=%v): the collision never happened", c.Parked)
		}
	}
	// The harness's reason to exist: with forced collisions even a
	// single writer shows the parked-stall tail the epoch path removes.
	// The parked writer parks for whole rebuilds, so its accumulated
	// stall time dominates the epoch path's. The contrast needs real
	// parallelism — on a single-CPU machine the rebuild and the writer
	// share the core, so both cells degenerate to scheduler noise and
	// only the harness mechanics are asserted.
	if runtime.GOMAXPROCS(0) > 1 {
		if rep.Parked.TotalStall <= rep.Epoch.TotalStall {
			t.Errorf("parked total stall %v not above epoch total stall %v",
				rep.Parked.TotalStall, rep.Epoch.TotalStall)
		}
		if rep.Parked.Stalled == 0 {
			t.Error("parked cell recorded no stalled inserts despite forced rebuild collisions")
		}
	} else {
		t.Logf("GOMAXPROCS=1: stall contrast not asserted (epoch %v vs parked %v)",
			rep.Epoch.TotalStall, rep.Parked.TotalStall)
	}
	if !strings.Contains(buf.String(), "collision harness") {
		t.Fatal("missing output header")
	}
}
