package kernel

import (
	"math/rand"
	"testing"
)

// The benchmarks compare the chunk-unrolled branch-free kernels
// against the scalar branchy scan they replaced, on data where the
// predicate branch is unpredictable (random values, ~50% selectivity)
// — the regime the README's kernel numbers quote. All variants run
// through a function value with runtime bounds: inlining a benchmark's
// constant bounds lets the compiler specialize the scalar loop into
// branch-free code real queries never get, flattering it by ~7x.
func benchData(n int) []int64 {
	rng := rand.New(rand.NewSource(7))
	v := make([]int64, n)
	for i := range v {
		v[i] = rng.Int63n(1 << 20)
	}
	return v
}

func scalarCount(v []int64, lo, hi int64) int64 { return refCount(v, lo, hi) }
func scalarSum(v []int64, lo, hi int64) int64   { return refSum(v, lo, hi) }

func benchAggregate(b *testing.B, f func([]int64, int64, int64) int64) {
	v := benchData(1 << 16)
	b.SetBytes(int64(len(v) * 8))
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += f(v, 1<<18, 3<<18)
	}
	_ = sink
}

func BenchmarkCountRangeKernel(b *testing.B) { benchAggregate(b, CountRange) }
func BenchmarkCountRangeScalar(b *testing.B) { benchAggregate(b, scalarCount) }
func BenchmarkSumRangeKernel(b *testing.B)   { benchAggregate(b, SumRange) }
func BenchmarkSumRangeScalar(b *testing.B)   { benchAggregate(b, scalarSum) }

func BenchmarkSumKernel(b *testing.B) {
	v := benchData(1 << 16)
	b.SetBytes(int64(len(v) * 8))
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += Sum(v)
	}
	_ = sink
}
