package crackindex

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"adaptix/internal/workload"
)

// --- Group cracking (§7 "dynamic algorithms" extension) ---

func TestGroupCrackingCorrectness(t *testing.T) {
	d := workload.NewUniqueUniform(20000, 3)
	ix := New(d.Values, Options{Latching: LatchPiece, GroupCracking: true})
	qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.02, 9), 80)
	for i, q := range qs {
		if got, _ := ix.Count(q.Lo, q.Hi); got != q.Hi-q.Lo {
			t.Fatalf("query %d: Count = %d, want %d", i, got, q.Hi-q.Lo)
		}
		want := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
		if got, _ := ix.Sum(q.Lo, q.Hi); got != want {
			t.Fatalf("query %d: Sum = %d, want %d", i, got, want)
		}
	}
}

func TestGroupCrackingConcurrent(t *testing.T) {
	d := workload.NewUniqueUniform(100000, 4)
	ix := New(d.Values, Options{Latching: LatchPiece, GroupCracking: true})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewUniform(workload.Sum, d.Domain, 0.005, uint64(c*7+1))
			for i := 0; i < 80; i++ {
				q := gen.Next()
				if got, _ := ix.Count(q.Lo, q.Hi); got != q.Hi-q.Lo {
					errs <- "count mismatch"
					return
				}
				want := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
				if got, _ := ix.Sum(q.Lo, q.Hi); got != want {
					errs <- "sum mismatch"
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// All boundaries must still be physically respected.
	for _, b := range ix.BoundaryPositions() {
		for i := 0; i < b.Pos; i++ {
			if ix.arr.Value(i) >= b.Value {
				t.Fatalf("boundary %d violated at pos %d", b.Value, i)
			}
		}
	}
}

func TestGroupCrackingSatisfiesWaiters(t *testing.T) {
	// Force a queue: many goroutines crack distinct bounds inside the
	// same (single, uncracked) piece. With group cracking, some of
	// those bounds should be satisfied by another query's group pass.
	d := workload.NewUniqueUniform(200000, 5)
	ix := New(d.Values, Options{Latching: LatchPiece, GroupCracking: true})
	ix.Count(0, 1) // initialize
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo := int64(10000 * (i + 1))
			if got, _ := ix.Count(lo, lo+5000); got != 5000 {
				panic("count mismatch")
			}
		}(i)
	}
	wg.Wait()
	t.Logf("group cracks: %d, grouped bounds: %d",
		ix.Stats().GroupCracks.Load(), ix.Stats().GroupedBounds.Load())
	// The group pass may or may not trigger depending on scheduling;
	// correctness (above) is mandatory either way. If it triggered,
	// counters must be consistent.
	if g, b := ix.Stats().GroupCracks.Load(), ix.Stats().GroupedBounds.Load(); g > 0 && b == 0 {
		t.Fatal("group cracks recorded without grouped bounds")
	}
}

func TestCrackMultiMatchesRepeatedCrackInTwo(t *testing.T) {
	f := func(seed uint64, rawPivots []int64) bool {
		d := workload.NewDuplicates(2000, 500, seed)
		if len(rawPivots) > 8 {
			rawPivots = rawPivots[:8]
		}
		var pivots []int64
		seen := map[int64]bool{}
		for _, p := range rawPivots {
			v := p % 500
			if v < 0 {
				v = -v
			}
			if !seen[v] {
				seen[v] = true
				pivots = append(pivots, v)
			}
		}
		ixGroup := New(d.Values, Options{Latching: LatchNone})
		ixPlain := New(d.Values, Options{Latching: LatchNone})
		for _, p := range pivots {
			a, _ := ixGroup.Count(0, p)
			b, _ := ixPlain.Count(0, p)
			if a != b || a != d.TrueCount(0, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- Differential updates ([22]/[30] extension) ---

func TestInsertDeleteBasic(t *testing.T) {
	d := workload.NewUniqueUniform(10000, 7)
	ix := New(d.Values, Options{Latching: LatchPiece})
	// Baseline.
	if n, _ := ix.Count(1000, 2000); n != 1000 {
		t.Fatal("baseline count")
	}
	ix.Insert(1500)
	ix.Insert(1500)
	ix.Insert(5)
	if n, _ := ix.Count(1000, 2000); n != 1002 {
		t.Fatalf("count after inserts = %d", n)
	}
	wantSum := (1000+1999)*1000/2 + 2*1500
	if s, _ := ix.Sum(1000, 2000); s != int64(wantSum) {
		t.Fatalf("sum after inserts = %d, want %d", s, wantSum)
	}
	// Delete one base value and one inserted value.
	if !ix.DeleteValue(1500) || !ix.DeleteValue(1500) || !ix.DeleteValue(1500) {
		t.Fatal("deletes of existing instances failed")
	}
	// 1500 had base 1 + ins 2 = 3 instances; all gone now.
	if ix.DeleteValue(1500) {
		t.Fatal("deleted a 4th instance of 1500 (only 3 existed)")
	}
	if n, _ := ix.Count(1000, 2000); n != 999 {
		t.Fatalf("count after deletes = %d", n)
	}
	ins, dels := ix.PendingUpdates()
	if ins != 3 || dels != 3 {
		t.Fatalf("pending = %d,%d", ins, dels)
	}
}

func TestDeleteNonexistent(t *testing.T) {
	d := workload.NewUniqueUniform(100, 9)
	ix := New(d.Values, Options{Latching: LatchPiece})
	if ix.DeleteValue(5000) {
		t.Fatal("deleted a value outside the domain")
	}
	if !ix.DeleteValue(50) {
		t.Fatal("failed to delete an existing value")
	}
	if ix.DeleteValue(50) {
		t.Fatal("double-deleted a unique value")
	}
}

func TestUpdatesDoNotTouchStructure(t *testing.T) {
	d := workload.NewUniqueUniform(10000, 11)
	ix := New(d.Values, Options{Latching: LatchPiece})
	ix.Count(2000, 8000)
	cracks := ix.Stats().Cracks.Load()
	pieces := ix.NumPieces()
	for i := int64(0); i < 100; i++ {
		ix.Insert(3000 + i)
	}
	if ix.Stats().Cracks.Load() != cracks || ix.NumPieces() != pieces {
		t.Fatal("inserts changed the physical index structure")
	}
	// Queries after updates remain exact and keep refining.
	if n, _ := ix.Count(3000, 3100); n != 200 {
		t.Fatalf("count = %d, want 200 (100 base + 100 inserted)", n)
	}
}

func TestUpdatesConcurrentWithQueries(t *testing.T) {
	d := workload.NewUniqueUniform(50000, 13)
	ix := New(d.Values, Options{Latching: LatchPiece})
	var wg sync.WaitGroup
	// Writer: inserts 1000 values into [10000, 11000) and deletes 500
	// base values from [20000, 20500).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 1000; i++ {
			ix.Insert(10000 + (i % 1000))
		}
		for i := int64(0); i < 500; i++ {
			if !ix.DeleteValue(20000 + i) {
				panic("delete failed")
			}
		}
	}()
	// Readers: ranges untouched by the writer stay exact throughout.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewUniform(workload.Sum, 9000, 0.05, uint64(c+1))
			for i := 0; i < 50; i++ {
				q := gen.Next() // entirely below 10000
				if got, _ := ix.Count(q.Lo, q.Hi); got != q.Hi-q.Lo {
					panic("count mismatch in untouched range")
				}
			}
		}(c)
	}
	wg.Wait()
	// Final state exact everywhere.
	if n, _ := ix.Count(10000, 11000); n != 2000 {
		t.Fatalf("inserted range count = %d, want 2000", n)
	}
	if n, _ := ix.Count(20000, 20500); n != 0 {
		t.Fatalf("deleted range count = %d, want 0", n)
	}
	if n, _ := ix.Count(0, 50000); n != 50000+1000-500 {
		t.Fatalf("total count = %d", n)
	}
}

func TestUpdatesWithGroupCrackingAndSkip(t *testing.T) {
	// Updates compose with every CC configuration.
	d := workload.NewDuplicates(5000, 200, 15)
	for _, opts := range []Options{
		{Latching: LatchPiece, GroupCracking: true},
		{Latching: LatchPiece, OnConflict: Skip},
		{Latching: LatchColumn},
		{Latching: LatchNone},
	} {
		ix := New(d.Values, opts)
		ix.Insert(50)
		ix.Insert(50)
		ix.DeleteValue(100)
		want := d.TrueCount(0, 200) + 2
		if d.TrueCount(100, 101) > 0 {
			want--
		}
		if n, _ := ix.Count(0, 200); n != want {
			t.Fatalf("%v: total = %d, want %d", opts.Latching, n, want)
		}
	}
}

// --- Write-path primitives used by internal/shard rebuilds ---

func TestPendingSnapshotDoesNotDrain(t *testing.T) {
	ix := New([]int64{5, 1, 9, 3}, Options{Latching: LatchPiece})
	ix.Insert(7)
	ix.Insert(2)
	if !ix.DeleteValue(9) {
		t.Fatal("DeleteValue(9) = false, want true")
	}
	ins, del := ix.PendingSnapshot()
	if len(ins) != 2 || ins[0] != 2 || ins[1] != 7 {
		t.Fatalf("snapshot ins = %v, want [2 7]", ins)
	}
	if len(del) != 1 || del[0] != 9 {
		t.Fatalf("snapshot del = %v, want [9]", del)
	}
	// The differential stays in place: answers are unchanged.
	if n, _ := ix.Count(0, 100); n != 5 {
		t.Fatalf("Count after snapshot = %d, want 5", n)
	}
	if nIns, nDel := ix.PendingUpdates(); nIns != 2 || nDel != 1 {
		t.Fatalf("pending drained by snapshot: %d/%d", nIns, nDel)
	}
}

func TestCrackAtReplaysBoundaries(t *testing.T) {
	d := workload.NewUniqueUniform(1<<12, 61)
	for _, mode := range []LatchMode{LatchPiece, LatchColumn, LatchNone} {
		ix := New(d.Values, Options{Latching: mode})
		for _, b := range []int64{100, 500, 900, 100} { // duplicate is a no-op
			ix.CrackAt(b)
		}
		bs := ix.Boundaries()
		if len(bs) != 3 {
			t.Fatalf("mode %v: %d boundaries, want 3 (%v)", mode, len(bs), bs)
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if n, _ := ix.Count(100, 900); n != 800 {
			t.Fatalf("mode %v: Count = %d, want 800", mode, n)
		}
	}
}

func TestDeleteValueNearSentinel(t *testing.T) {
	// DeleteValue(v) probes [v, v+1); for v = maxKey-1 the upper bound
	// is the maxKey sentinel, which must resolve to the array end
	// instead of looping in bound re-determination.
	for _, mode := range []LatchMode{LatchPiece, LatchColumn, LatchNone} {
		ix := New([]int64{math.MaxInt64 - 1, 5, -3}, Options{Latching: mode})
		if !ix.DeleteValue(math.MaxInt64 - 1) {
			t.Fatalf("mode %v: DeleteValue(maxKey-1) = false, want true", mode)
		}
		if ix.DeleteValue(math.MaxInt64 - 1) {
			t.Fatalf("mode %v: second delete found a ghost instance", mode)
		}
		if n, _ := ix.Count(math.MaxInt64-2, math.MaxInt64); n != 0 {
			t.Fatalf("mode %v: Count near sentinel = %d, want 0", mode, n)
		}
	}
}
