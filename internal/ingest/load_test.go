package ingest

import (
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/shard"
	"adaptix/internal/workload"
)

// buildHotColdColumn builds a two-shard column of roughly equal row
// counts and hammers the first shard's range with narrow queries, so
// shard 0 is scorching (Cracks traffic) and shard 1 is ice cold while
// their populations stay balanced.
func buildHotColdColumn(t *testing.T) *shard.Column {
	t.Helper()
	d := workload.NewUniqueUniform(1<<13, 3)
	col := shard.New(d.Values, shard.Options{
		Shards: 2, Seed: 3,
		Index: crackindex.Options{Latching: crackindex.LatchPiece},
	})
	if col.NumShards() != 2 {
		t.Fatalf("expected 2 shards, got %d", col.NumShards())
	}
	hiEnd := col.Bounds()[0]
	r := workload.NewRNG(77)
	for i := 0; i < 400; i++ {
		lo := r.Int64n(hiEnd - 16)
		col.Count(qctx, lo, lo+1+r.Int64n(16))
	}
	stats := col.Snapshot()
	if stats[0].Cracks == 0 || stats[0].Cracks <= stats[1].Cracks {
		t.Fatalf("setup failed: shard 0 cracks %d vs shard 1 %d", stats[0].Cracks, stats[1].Cracks)
	}
	return col
}

// TestLoadAwareRebalanceSplitsHotShard: with LoadWeight, a shard whose
// refinement traffic dominates splits even though its row count alone
// never would; with pure row-count weights the same layout stays put.
func TestLoadAwareRebalanceSplitsHotShard(t *testing.T) {
	// Control: row-count balancing sees two equal shards, no work.
	cold := New(buildHotColdColumn(t), Options{
		SplitFactor: 1.2, MinShardRows: 128, ApplyThreshold: 1 << 30,
	})
	if splits, merges := cold.Rebalance(); splits != 0 || merges != 0 {
		t.Fatalf("row-count rebalance did %d splits / %d merges on a balanced map", splits, merges)
	}

	col := buildHotColdColumn(t)
	hotEnd := col.Bounds()[0]
	g := New(col, Options{
		SplitFactor: 1.2, LoadWeight: 4, MinShardRows: 128, ApplyThreshold: 1 << 30,
	})
	splits, _ := g.Rebalance()
	if splits == 0 {
		t.Fatal("load-aware rebalance never split the scorching shard")
	}
	// The new cut must subdivide the hot shard's range, not the cold one.
	bounds := col.Bounds()
	cutInHot := false
	for _, b := range bounds {
		if b < hotEnd {
			cutInHot = true
		}
	}
	if !cutInHot {
		t.Errorf("split landed outside the hot range: bounds %v, hot end %d", bounds, hotEnd)
	}
	if err := col.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadAwareMergeSparesHotDwarfs: two adjacent dwarf shards merge
// under row-count weights, but stay apart while one of them is still
// taking refinement fire scaled past the merge threshold.
func TestLoadAwareMergeSparesHotDwarfs(t *testing.T) {
	d := workload.NewUniqueUniform(1<<13, 5)
	mk := func() *shard.Column {
		// Four shards; shards 1+2 will be dwarfed by deleting most of
		// their values through the column write path.
		col := shard.New(d.Values, shard.Options{
			Shards: 4, Seed: 5,
			Index: crackindex.Options{Latching: crackindex.LatchPiece},
		})
		bounds := col.Bounds()
		for v := bounds[0]; v < bounds[2]; v++ {
			if v%8 != 0 { // leave a residue so the shards stay non-empty
				col.DeleteValue(qctx, v)
			}
		}
		for i := col.NumShards() - 1; i >= 0; i-- {
			col.ApplyShard(i)
		}
		return col
	}

	cold := New(mk(), Options{MergeFraction: 0.5, ApplyThreshold: 1 << 30})
	if _, merges := cold.Rebalance(); merges == 0 {
		t.Fatal("row-count rebalance left adjacent dwarf shards unmerged")
	}

	col := mk()
	// Heat the dwarfs with narrow queries before the pass.
	bounds := col.Bounds()
	r := workload.NewRNG(91)
	for i := 0; i < 600; i++ {
		span := bounds[2] - bounds[0]
		lo := bounds[0] + r.Int64n(span-8)
		col.Count(qctx, lo, lo+1+r.Int64n(8))
	}
	g := New(col, Options{MergeFraction: 0.5, LoadWeight: 8, ApplyThreshold: 1 << 30})
	before := col.NumShards()
	g.Rebalance()
	if after := col.NumShards(); after < before {
		t.Errorf("load-aware rebalance merged shards still taking fire: %d -> %d", before, after)
	}
}
