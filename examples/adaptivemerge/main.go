// Adaptivemerge: adaptive merging and hybrid crack-sort convergence.
//
// Compares the three adaptive methods' life cycles on the same query
// stream through the ONE unified handle — only WithMethod changes:
// database cracking converges lazily; adaptive merging pays
// run-sorting up front and converges fast; the hybrid splits the
// difference. Also shows the structural WAL: merge steps log tiny
// structural records, never index contents, and run as instantly
// committed system transactions.
//
// Run: go run ./examples/adaptivemerge
package main

import (
	"context"
	"fmt"
	"time"

	"adaptix"
)

func main() {
	const rows = 1 << 20
	ctx := context.Background()
	data := adaptix.NewUniqueDataset(rows, 5)
	qs := adaptix.UniformQueries(adaptix.SumQuery, data.Domain, 0.01, 3, 64)

	log := adaptix.NewStructuralLog()
	tm := adaptix.NewTxnManager()

	mk := func(opts ...adaptix.Option) *adaptix.Index {
		ix, err := adaptix.New(data.Values, append([]adaptix.Option{adaptix.WithShards(1)}, opts...)...)
		if err != nil {
			panic(err)
		}
		return ix
	}
	crack := mk(adaptix.WithMethod(adaptix.Crack),
		adaptix.WithCrackOptions(adaptix.CrackOptions{Latching: adaptix.LatchPiece}))
	merge := mk(adaptix.WithMethod(adaptix.AMerge),
		adaptix.WithMergeOptions(adaptix.MergeOptions{RunSize: 1 << 16, Log: log, TxnMgr: tm}))
	hybrid := mk(adaptix.WithMethod(adaptix.Hybrid),
		adaptix.WithHybridOptions(adaptix.HybridOptions{PartitionSize: 1 << 16}))
	defer crack.Close()
	defer merge.Close()
	defer hybrid.Close()

	fmt.Printf("%-8s %12s %12s %12s\n", "query", "crack", "amerge", "hybrid")
	indexes := []*adaptix.Index{crack, merge, hybrid}
	for i, q := range qs {
		var times [3]time.Duration
		for e := range indexes {
			start := time.Now()
			if _, err := indexes[e].Sum(ctx, q.Lo, q.Hi); err != nil {
				panic(err)
			}
			times[e] = time.Since(start)
		}
		if i < 4 || (i+1)%16 == 0 {
			fmt.Printf("%-8d %12v %12v %12v\n", i+1,
				times[0].Round(time.Microsecond),
				times[1].Round(time.Microsecond),
				times[2].Round(time.Microsecond))
		}
	}

	started, finished := tm.Counts()
	fmt.Printf("\nsystem transactions: %d started, %d instantly committed\n", started, finished)
	fmt.Printf("structural WAL: %d records (runs + merge steps), no index contents logged:\n", log.Len())
	for _, r := range log.Records()[:5] {
		fmt.Printf("  lsn=%-3d %-12s %s A=%d B=%d C=%d\n", r.LSN, r.Kind, r.Object, r.A, r.B, r.C)
	}
	fmt.Println("  ...")
}
