// Lock-free log-linear histograms: the quantile kernel of the
// observability layer.
//
// A Histogram is a fixed array of atomic bucket counters indexed by a
// log-linear value scheme (16 linear sub-buckets per power of two, the
// HdrHistogram idea reduced to its essence): Record is a constant-time
// pair of atomic adds with no allocation, no lock, and no contention
// beyond the bucket cache line itself, so it is safe to call from the
// hottest query and write paths. Quantile readout (p50/p99/p999),
// merging across shards, and snapshot-and-reset all operate on
// immutable Snapshot copies, never on the live buckets.
//
// Relative error is bounded by the sub-bucket width: at most 1/16
// (6.25%) of the value, which is ample for latency quantiles spanning
// nanoseconds to seconds.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBuckets is the number of linear sub-buckets per power of
	// two (the log-linear resolution).
	histSubBuckets = 16
	// histBuckets covers non-negative int64 values: buckets 0..15 are
	// exact, then 16 sub-buckets for each bit length 5..63.
	histBuckets = (63-4)*histSubBuckets + histSubBuckets
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	k := bits.Len64(u)                              // >= 5
	return (k-5)*histSubBuckets + int(u>>uint(k-5)) // u>>(k-5) is in [16, 32)
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	a, b := i/histSubBuckets, i%histSubBuckets
	return int64(histSubBuckets+b) << uint(a-1)
}

// bucketMid returns the representative (middle) value of bucket i,
// used for quantile readout.
func bucketMid(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	width := int64(1) << uint(i/histSubBuckets-1)
	return bucketLow(i) + width/2
}

// Histogram is a lock-free log-linear histogram over non-negative
// int64 values (typically nanoseconds, sometimes record counts). The
// zero value is ready to use. All methods are safe for concurrent use;
// Record never allocates.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
}

// Record adds one observation (negative values clamp to zero).
func (h *Histogram) Record(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// recordBucket counts an observation with weight n, without touching
// the sum — for callers that batch sums separately (the convergence
// layer drains its packed window sum via addSum) or record a sampled
// stream with compensating weight.
func (h *Histogram) recordBucket(v, n int64) { h.buckets[bucketOf(v)].Add(n) }

// addSum folds a batched sum contribution in (pair of recordBucket).
func (h *Histogram) addSum(v int64) {
	if v > 0 {
		h.sum.Add(v)
	}
}

// Snapshot copies the current bucket counts. The copy is not a
// point-in-time atomic cut across buckets (observations racing the
// copy may or may not be included), but every observation is counted
// in exactly one bucket.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// SnapshotReset atomically extracts and zeroes each bucket. Across any
// sequence of SnapshotReset calls racing any number of writers, every
// Record lands in exactly one returned snapshot (totals are
// conserved), which is what lets a scraper drain per-interval deltas.
func (h *Histogram) SnapshotReset() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Swap(0)
	}
	s.Sum = h.sum.Swap(0)
	return s
}

// HistSnapshot is an immutable copy of a histogram's state, the unit
// of quantile readout and cross-shard merging.
type HistSnapshot struct {
	// Counts holds the per-bucket observation counts.
	Counts [histBuckets]int64
	// Sum is the (approximate, under concurrent reset) sum of all
	// recorded values.
	Sum int64
}

// Merge adds o's counts into s (mergeable across shards or intervals).
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
}

// Count returns the total number of observations.
func (s *HistSnapshot) Count() int64 {
	var n int64
	for i := range s.Counts {
		n += s.Counts[i]
	}
	return n
}

// Mean returns the mean observed value (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Quantile returns the value at quantile q in [0, 1] (the bucket
// midpoint containing the rank), or 0 when the histogram is empty.
func (s *HistSnapshot) Quantile(q float64) int64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := range s.Counts {
		seen += s.Counts[i]
		if seen > rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// QuantileDuration is Quantile for nanosecond histograms.
func (s *HistSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// Buckets calls f with each non-empty bucket's upper value bound and
// count, in increasing value order — the Prometheus exposition shape.
func (s *HistSnapshot) Buckets(f func(upperBound int64, count int64)) {
	for i := range s.Counts {
		if s.Counts[i] > 0 {
			width := int64(1)
			if i >= histSubBuckets {
				width = int64(1) << uint(i/histSubBuckets-1)
			}
			f(bucketLow(i)+width-1, s.Counts[i])
		}
	}
}
