// Online shard rebalancing: the rebalancer watches per-shard row
// counts — and, with Options.LoadWeight, the per-shard refinement
// traffic — and repairs population and load drift with split and merge
// operations that readers never block on (the shard map swap reuses
// the piece-latch discipline one level up — see
// internal/shard/update.go).
package ingest

import (
	"adaptix/internal/shard"
	"adaptix/internal/wal"
)

// Rebalance runs one split/merge pass over the current shard map and
// returns the number of splits and merges performed.
//
// A shard whose weight exceeds SplitFactor times the mean weight (and
// whose rows exceed MinShardRows) is split at its median; two adjacent
// shards whose combined weight falls below MergeFraction times the
// mean are merged. With LoadWeight zero a shard's weight is its row
// count; otherwise the weight is load-aware — rows scaled by the
// shard's share of the column's observed refinement traffic (the
// Cracks and Conflicts counters in shard.ShardStat) — so a hot shard
// splits before it dominates a latch domain and two shards still
// taking fire are not merged back together. The thresholds are
// hysteretic by construction — a fresh split yields halves of roughly
// mean weight, far below the split threshold — so the rebalancer
// cannot oscillate. Each operation is one system transaction with one
// wal.ShardSplit / wal.ShardMerge record.
func (g *Coordinator) Rebalance() (splits, merges int) {
	stats := g.col.Snapshot()
	if len(stats) == 0 {
		return 0, 0
	}
	var rows int64
	for _, s := range stats {
		rows += int64(s.Rows)
	}
	meanRows := float64(rows) / float64(len(stats))
	if meanRows < 1 {
		return 0, 0
	}
	weight := g.weights(stats)
	var mean float64
	for _, w := range weight {
		mean += w
	}
	mean /= float64(len(weight))

	// Splits, descending so earlier ordinals stay valid.
	shards := len(stats)
	for i := len(stats) - 1; i >= 0; i-- {
		if shards >= g.opts.MaxShards {
			break
		}
		if stats[i].Rows < g.opts.MinShardRows || weight[i] <= g.opts.SplitFactor*mean {
			continue
		}
		if g.splitShard(i) {
			splits++
			shards++
		}
	}

	// Merges, on a fresh snapshot (splits shifted ordinals). After a
	// merge at i the pair (i-1, i) is re-examined next iteration with
	// a stale weight for the merged shard; skipping one extra ordinal
	// keeps the pass conservative.
	stats = g.col.Snapshot()
	weight = g.weights(stats)
	for i := len(stats) - 2; i >= 0 && len(stats)-merges > 1; i-- {
		if weight[i]+weight[i+1] >= g.opts.MergeFraction*mean {
			continue
		}
		if g.mergeShards(i) {
			merges++
			i--
		}
	}
	return splits, merges
}

// weights maps each shard to its rebalancing weight. With LoadWeight
// w > 0 a shard's row count is scaled by 1 + w*(its refinement
// traffic relative to the column mean), where traffic is the Cracks +
// Conflicts counters of the shard's current index incarnation (they
// reset on every rebuild, so the signal tracks recent heat, not
// lifetime totals). A shard with mean traffic keeps weight rows*(1+w);
// an idle one decays toward its plain row count.
func (g *Coordinator) weights(stats []shard.ShardStat) []float64 {
	out := make([]float64, len(stats))
	if g.opts.LoadWeight <= 0 {
		for i, s := range stats {
			out[i] = float64(s.Rows)
		}
		return out
	}
	var traffic int64
	for _, s := range stats {
		traffic += s.Cracks + s.Conflicts
	}
	meanTraffic := float64(traffic) / float64(len(stats))
	for i, s := range stats {
		heat := 0.0
		if meanTraffic > 0 {
			heat = float64(s.Cracks+s.Conflicts) / meanTraffic
		}
		out[i] = float64(s.Rows) * (1 + g.opts.LoadWeight*heat)
	}
	return out
}

// splitShard splits shard i inside a system transaction, logging a
// wal.ShardSplit record with the new cut.
func (g *Coordinator) splitShard(i int) bool {
	return g.structural(func() ([]wal.Record, bool) {
		sp, ok := g.col.SplitShard(i)
		if !ok {
			return nil, false
		}
		g.splits.Add(1)
		return []wal.Record{{
			Kind: wal.ShardSplit,
			A:    sp.Cut, B: int64(sp.LeftRows), C: int64(sp.RightRows),
		}}, true
	})
}

// mergeShards merges shards i and i+1 inside a system transaction,
// logging a wal.ShardMerge record with the removed cut.
func (g *Coordinator) mergeShards(i int) bool {
	return g.structural(func() ([]wal.Record, bool) {
		mg, ok := g.col.MergeShards(i)
		if !ok {
			return nil, false
		}
		g.merges.Add(1)
		return []wal.Record{{
			Kind: wal.ShardMerge,
			A:    mg.RemovedBound, B: int64(mg.Rows),
		}}, true
	})
}
