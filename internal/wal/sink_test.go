package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// appendN appends n committed single-record system transactions
// through a log backed by sink.
func appendN(t *testing.T, l *Log, n int, obj string) {
	t.Helper()
	for i := 0; i < n; i++ {
		txn := uint64(i + 1)
		for _, r := range []Record{
			{Kind: BeginSystem, Txn: txn},
			{Kind: ShardSplit, Txn: txn, Object: obj, A: int64(100 + i)},
			{Kind: CommitSystem, Txn: txn},
		} {
			if _, err := l.Append(r); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSink(dir, SinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := New(s)
	appendN(t, l, 5, "col")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	n, err := Replay(raw, func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 || len(got) != 15 {
		t.Fatalf("replayed %d records, want 15", n)
	}
	want := l.Records()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestFileSinkRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSink(dir, SinkOptions{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l := New(s)
	appendN(t, l, 20, "col")
	segs, err := s.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation into multiple segments, got %v", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := ReadDir(dir)
	n, _ := Replay(raw, func(Record) {})
	if n != 60 {
		t.Fatalf("replayed %d records across segments, want 60", n)
	}
}

func TestFileSinkTornTailStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSink(dir, SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l := New(s)
	appendN(t, l, 4, "col")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop bytes off the last (only) segment mid-frame.
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Replay(img, func(Record) {})
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("replayed %d records with torn tail, want 11", n)
	}
}

func TestFileSinkCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSink(dir, SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l := New(s)
	appendN(t, l, 3, "col")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the file: the CRC of that
	// frame fails and reading stops there.
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Replay(img, func(Record) {})
	if err != nil {
		t.Fatal(err)
	}
	if n >= 9 {
		t.Fatalf("replayed %d records despite corrupt frame", n)
	}
}

func TestFileSinkCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSink(dir, SinkOptions{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l := New(s)
	appendN(t, l, 10, "col")
	seg, err := s.MarkCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// The "checkpoint" record lands in the fresh segment.
	if _, err := l.Append(Record{Kind: Checkpoint, Object: "col", C: CkptHeader, A: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.ReleaseBefore(seg); err != nil {
		t.Fatal(err)
	}
	segs, err := s.Segments()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range segs {
		if i < seg {
			t.Fatalf("segment %d survived ReleaseBefore(%d): %v", i, seg, segs)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	img, _ := ReadDir(dir)
	var kinds []Kind
	if _, err := Replay(img, func(r Record) { kinds = append(kinds, r.Kind) }); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 || kinds[0] != Checkpoint {
		t.Fatalf("after truncation want only the checkpoint record, got %v", kinds)
	}
}

func TestFileSinkAbandonsSegmentAfterFailedWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSink(dir, SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l := New(s)
	appendN(t, l, 1, "col")
	// Simulate a failed write that left a partial frame: garbage in the
	// current segment plus the sink's failed-write flag.
	if _, err := s.f.Write([]byte{0x77, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	s.werr = true

	// The next record must land in a fresh segment, not behind the
	// garbage — and MarkCheckpoint must not reuse the damaged segment.
	appendN(t, l, 1, "col")
	if s.seg != 2 {
		t.Fatalf("write after failure stayed in segment %d", s.seg)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Replay(img, func(Record) {})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("replayed %d records, want 6 (both txns readable)", n)
	}
}

func TestReadDirSkipsDamagedEarlierSegment(t *testing.T) {
	// A stale segment with a torn tail (e.g. a failed truncation after
	// a crash) must not mask the segments written after it: reading
	// resumes at the next segment boundary.
	dir := t.TempDir()
	s1, err := NewFileSink(dir, SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, New(s1), 3, "col")
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	seg1 := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg1, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// A later incarnation writes a checkpoint into fresh segments.
	s2, err := NewFileSink(dir, SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l2 := New(s2)
	for _, r := range []Record{
		{Kind: BeginSystem, Txn: 1},
		{Kind: Checkpoint, Txn: 1, Object: "col", C: CkptHeader, A: 1},
		{Kind: CommitSystem, Txn: 1},
	} {
		if _, err := l2.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	img, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sawCkpt bool
	if _, err := Replay(img, func(r Record) {
		if r.Kind == Checkpoint {
			sawCkpt = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !sawCkpt {
		t.Fatal("checkpoint behind a damaged segment was not read")
	}
	cat, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.ShardCracks["col"]; !ok {
		t.Fatal("checkpoint behind a damaged segment was not recovered")
	}
}

func TestFileSinkReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileSink(dir, SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l1 := New(s1)
	appendN(t, l1, 2, "col")
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileSink(dir, SinkOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l2 := New(s2)
	appendN(t, l2, 2, "col")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentIndexes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("want 2 segments after reopen, got %v", segs)
	}
	img, _ := ReadDir(dir)
	n, _ := Replay(img, func(Record) {})
	if n != 12 {
		t.Fatalf("replayed %d records, want 12", n)
	}
}
