package hybrid

import (
	"context"
	"sync"
	"testing"
	"time"

	"adaptix/internal/avltree"
	"adaptix/internal/cracker"
	"adaptix/internal/engine"
	"adaptix/internal/workload"
)

var _ engine.Engine = (*Index)(nil)

func TestMatchesBruteForce(t *testing.T) {
	d := workload.NewUniqueUniform(20000, 3)
	for _, layout := range []cracker.Layout{cracker.LayoutSplit, cracker.LayoutPairs} {
		ix := New(d.Values, Options{PartitionSize: 1 << 10, Layout: layout})
		qs := workload.Fixed(workload.NewUniform(workload.Sum, d.Domain, 0.03, 9), 60)
		for i, q := range qs {
			if got := qCount(ix, q.Lo, q.Hi).Value; got != q.Hi-q.Lo {
				t.Fatalf("%v query %d: Count = %d, want %d", layout, i, got, q.Hi-q.Lo)
			}
			want := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
			if got := qSum(ix, q.Lo, q.Hi).Value; got != want {
				t.Fatalf("%v query %d: Sum = %d, want %d", layout, i, got, want)
			}
		}
		if ix.NumPartitions() != 20 {
			t.Fatalf("partitions = %d", ix.NumPartitions())
		}
		if ix.Extensions() == 0 {
			t.Fatal("no final-partition extensions")
		}
	}
}

func TestDuplicatesAndEdges(t *testing.T) {
	d := workload.NewDuplicates(10000, 300, 7)
	ix := New(d.Values, Options{PartitionSize: 1 << 9})
	for _, r := range [][2]int64{{0, 300}, {50, 51}, {-10, 10}, {290, 400}, {100, 100}, {200, 100}} {
		if got := qCount(ix, r[0], r[1]).Value; got != d.TrueCount(r[0], r[1]) {
			t.Fatalf("Count(%d,%d) = %d, want %d", r[0], r[1], got, d.TrueCount(r[0], r[1]))
		}
		if got := qSum(ix, r[0], r[1]).Value; got != d.TrueSum(r[0], r[1]) {
			t.Fatalf("Sum(%d,%d) = %d", r[0], r[1], got)
		}
	}
}

func TestOverlappingQueriesNoDoubleCounting(t *testing.T) {
	// The hybrid COPIES values into the final partition; overlapping
	// queries must extract only the uncovered gaps.
	d := workload.NewUniqueUniform(10000, 5)
	ix := New(d.Values, Options{PartitionSize: 1 << 9})
	if got := qCount(ix, 2000, 4000).Value; got != 2000 {
		t.Fatalf("first: %d", got)
	}
	// Overlaps [2000,4000) on both sides.
	if got := qCount(ix, 1000, 5000).Value; got != 4000 {
		t.Fatalf("overlapping: %d", got)
	}
	// Fully inside a covered range.
	if got := qCount(ix, 2500, 3500).Value; got != 1000 {
		t.Fatalf("inner: %d", got)
	}
	// Final partition must hold exactly the union [1000,5000).
	if got := ix.FinalSize(); got != 4000 {
		t.Fatalf("final size = %d, want 4000 (no duplicates)", got)
	}
	sum := qSum(ix, 1000, 5000).Value
	if want := (1000 + 4999) * 4000 / 2; sum != int64(want) {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestSnapshotFastPath(t *testing.T) {
	d := workload.NewUniqueUniform(8000, 11)
	ix := New(d.Values, Options{PartitionSize: 1 << 10})
	qSum(ix, 1000, 3000)
	before := ix.SnapshotHits()
	for i := 0; i < 4; i++ {
		qCount(ix, 1200, 2800)
	}
	if ix.SnapshotHits() != before+4 {
		t.Fatalf("snapshot hits %d, want %d", ix.SnapshotHits(), before+4)
	}
}

func TestCheapInitialization(t *testing.T) {
	// The hybrid's first touch must be much cheaper than a full sort:
	// it only copies chunks (no sorting at load, Figure 4).
	d := workload.NewUniqueUniform(200000, 13)
	ix := New(d.Values, Options{PartitionSize: 1 << 12})
	r := qCount(ix, 100, 200)
	if r.Refine == 0 {
		t.Fatal("first query did not charge initialization + crack")
	}
	if ix.NumPartitions() == 0 {
		t.Fatal("no partitions built")
	}
}

func TestConcurrentClients(t *testing.T) {
	d := workload.NewUniqueUniform(50000, 17)
	for _, policy := range []ConflictPolicy{Wait, Skip} {
		ix := New(d.Values, Options{PartitionSize: 1 << 11, OnConflict: policy})
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				gen := workload.NewUniform(workload.Sum, d.Domain, 0.01, uint64(c*13+5))
				for i := 0; i < 40; i++ {
					q := gen.Next()
					if got := qCount(ix, q.Lo, q.Hi).Value; got != q.Hi-q.Lo {
						errs <- "count mismatch"
						return
					}
					wantS := (q.Lo + q.Hi - 1) * (q.Hi - q.Lo) / 2
					if got := qSum(ix, q.Lo, q.Hi).Value; got != wantS {
						errs <- "sum mismatch"
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("policy %v: %s", policy, e)
		}
	}
}

func TestSkipPolicy(t *testing.T) {
	d := workload.NewUniqueUniform(30000, 19)
	ix := New(d.Values, Options{PartitionSize: 1 << 10, OnConflict: Skip})
	qCount(ix, 0, 10) // init
	ix.lt.Lock(0)
	done := make(chan engine.Result, 1)
	go func() { done <- qCount(ix, 5000, 6000) }()
	for ix.SkippedMoves() == 0 {
		time.Sleep(time.Millisecond)
	}
	ix.lt.Unlock()
	r := <-done
	if r.Value != 1000 || !r.Skipped {
		t.Fatalf("skip-path result: %+v", r)
	}
	// A skipped refinement leaves the final partition unchanged for
	// that range; a later uncontended query merges it.
	qCount(ix, 5000, 6000)
	if !ix.snap.Load().covered.Covers(5000, 6000) {
		t.Fatal("range not merged after contention cleared")
	}
}

func TestEmptyAndInvertedRanges(t *testing.T) {
	d := workload.NewUniqueUniform(1000, 29)
	ix := New(d.Values, Options{PartitionSize: 256})
	if qCount(ix, 500, 500).Value != 0 || qCount(ix, 600, 400).Value != 0 {
		t.Fatal("empty/inverted range returned entries")
	}
	if ix.Name() != "hybrid" {
		t.Fatal("bad name")
	}
}

func TestCrackBoundLocal(t *testing.T) {
	// Unit test of the per-partition cracker bookkeeping.
	vals := []int64{9, 2, 7, 4, 1, 8, 3, 6, 5, 0}
	p := &part{arr: cracker.New(vals, cracker.LayoutSplit), toc: &avltree.Tree[int]{}}
	pos5 := p.crackBound(5)
	if pos5 != 5 {
		t.Fatalf("crackBound(5) = %d", pos5)
	}
	for i := 0; i < pos5; i++ {
		if p.arr.Value(i) >= 5 {
			t.Fatalf("pos %d value %d >= 5", i, p.arr.Value(i))
		}
	}
	// Repeat is an exact-match lookup.
	if p.crackBound(5) != 5 {
		t.Fatal("repeat crackBound changed")
	}
	// Crack within the upper piece.
	pos8 := p.crackBound(8)
	if pos8 != 8 {
		t.Fatalf("crackBound(8) = %d", pos8)
	}
	for i := pos5; i < pos8; i++ {
		if v := p.arr.Value(i); v < 5 || v >= 8 {
			t.Fatalf("pos %d value %d outside [5,8)", i, v)
		}
	}
	// Below all existing boundaries.
	if pos2 := p.crackBound(2); pos2 != 2 {
		t.Fatalf("crackBound(2) = %d", pos2)
	}
}

// qCount / qSum drive the context-aware Engine surface with
// context.Background(), the uncancellable fast path the tests measure.
func qCount(e engine.Engine, lo, hi int64) engine.Result {
	r, _ := e.Count(context.Background(), lo, hi)
	return r
}

func qSum(e engine.Engine, lo, hi int64) engine.Result {
	r, _ := e.Sum(context.Background(), lo, hi)
	return r
}
