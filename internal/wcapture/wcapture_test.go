// Unit tests of the capture core: record codec, ring-overflow drop
// accounting with the edge-triggered flight event, sink rotation,
// sampling, the streaming signature's pattern discrimination, and the
// replayer's verification and pacing.
package wcapture

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"adaptix/internal/metrics"
)

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: RecCount, Method: 2, Epochs: 7, Tag: 0xdeadbeef, T: 1234567, Lo: -5, Hi: 1 << 40, Result: -99, Touched: 42},
		{Kind: RecSum, T: -1, Lo: -(1 << 60), Hi: 1 << 60, Result: 1 << 62},
		{Kind: RecInsert, Method: 255, Epochs: 0xffff, Lo: 77},
		{Kind: RecDelete, Lo: 3, Result: 1},
	}
	var buf [recordSize]byte
	for i, want := range recs {
		want.encode(&buf)
		if got := decodeRecord(buf[:]); got != want {
			t.Fatalf("record %d: decode = %+v, want %+v", i, got, want)
		}
	}
}

func TestDisabledRecorderIsInert(t *testing.T) {
	r, err := New(Options{}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Active() {
		t.Fatal("disabled recorder reports Active")
	}
	r.RecordRead("tag", false, 1, 2, 3, 4, 5)
	r.RecordWrite(9, true, true)
	if got := r.Retained(); got != nil {
		t.Fatalf("disabled Retained = %v, want nil", got)
	}
	if sig := r.Signature(); sig != (Signature{}) {
		t.Fatalf("disabled Signature = %+v, want zero", sig)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var nilRec *Recorder
	nilRec.RecordRead("", true, 0, 1, 0, 0, 0) // nil-safety
	nilRec.RecordWrite(0, false, false)
	if nilRec.Active() || nilRec.Signature() != (Signature{}) || nilRec.Close() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestSamplingAndRetention(t *testing.T) {
	r, err := New(Options{SampleEvery: 4, Ring: 64}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := int64(0); i < 400; i++ {
		r.RecordRead("", false, i, i+10, 1, 0, 0)
	}
	sig := r.Signature()
	if sig.Reads != 100 {
		t.Fatalf("SampleEvery 4 captured %d of 400 reads, want 100", sig.Reads)
	}
	got := r.Retained()
	if len(got) != 64 {
		t.Fatalf("retention holds %d records, want ring capacity 64", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Lo <= got[i-1].Lo {
			t.Fatalf("retention out of order at %d: %d after %d", i, got[i].Lo, got[i-1].Lo)
		}
	}
}

// TestRingOverflowDropAccounting pushes far more records than a tiny
// ring can hold faster than the drainer can drain: every record must
// be accounted — persisted or counted dropped — and the loss burst
// must leave exactly one edge-triggered flight event.
func TestRingOverflowDropAccounting(t *testing.T) {
	ob := metrics.NewObserver(metrics.ObserverOptions{})
	path := filepath.Join(t.TempDir(), "t.trace")
	r, err := New(Options{Ring: 64, Sink: path}, true, ob)
	if err != nil {
		t.Fatal(err)
	}
	const total = 10000
	for i := int64(0); i < total; i++ {
		r.RecordRead("", false, i, i+1, 0, 0, 0)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(len(recs)) + r.Dropped(); got != total {
		t.Fatalf("persisted %d + dropped %d = %d, want every record accounted (%d)",
			len(recs), r.Dropped(), got, total)
	}
	if r.Dropped() == 0 {
		t.Fatal("64-slot ring swallowed 10000 records without a drop?")
	}
	var drops int
	for _, ev := range ob.Flight().Dump() {
		if ev.Kind == metrics.EvCaptureDrop {
			drops++
			if ev.A <= 0 || ev.B <= 0 {
				t.Fatalf("drop event payload %+v, want positive burst and total counts", ev)
			}
		}
	}
	// Edge-triggered: one event per loss burst, not per lost record. A
	// burst spanning several drain ticks may re-trigger a few times, but
	// thousands of lost records must not mean thousands of events.
	if drops < 1 || drops > 5 {
		t.Fatalf("%d capture-drop flight events for %d lost records, want 1..5 (edge-triggered)",
			drops, r.Dropped())
	}
}

// TestTraceRotation pins the size-rotation policy: one rotated
// predecessor is retained, so ReadTrace returns the newest records
// spanning the rotation boundary and disk stays bounded near twice
// MaxBytes.
func TestTraceRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	// Room for exactly 10 records per file.
	r, err := New(Options{Ring: 1024, Sink: path, MaxBytes: headerSize + 10*recordSize}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 25; i++ {
		r.RecordRead("", false, i, i+1, 0, 0, 0)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	// 25 records, rotations after 10 and 20: the first file's records
	// 0..9 were displaced by the second rotation; 10..24 survive.
	if len(recs) != 15 {
		t.Fatalf("ReadTrace returned %d records, want 15 (newest full rotation + current)", len(recs))
	}
	for i, rec := range recs {
		if rec.Lo != int64(10+i) {
			t.Fatalf("record %d Lo = %d, want %d (oldest-first across the rotation)", i, rec.Lo, 10+i)
		}
	}
	fi, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("rotated file missing: %v", err)
	}
	if fi.Size() != headerSize+10*recordSize {
		t.Fatalf("rotated file size %d, want %d", fi.Size(), headerSize+10*recordSize)
	}
}

// TestSignatureDiscriminatesPatterns feeds the characterizer a
// sequential sweep and a pseudo-random roam: the sequentiality score
// must separate them decisively (it is the stochastic-cracking
// adversary detector).
func TestSignatureDiscriminatesPatterns(t *testing.T) {
	seq, err := New(Options{Ring: 64}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	seq.SetDomain(0, 1<<20)
	for i := int64(0); i < 500; i++ {
		lo := i * 1000
		seq.RecordRead("", false, lo, lo+1000, 0, 0, 0)
	}
	if sig := seq.Signature(); sig.SeqScore < 0.95 || sig.Locality < 0.95 {
		t.Fatalf("sequential sweep: seq_score=%v locality=%v, want both near 1", sig.SeqScore, sig.Locality)
	}

	rnd, err := New(Options{Ring: 64}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rnd.Close()
	rnd.SetDomain(0, 1<<20)
	state := uint64(7)
	for i := 0; i < 500; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		lo := int64(state>>40) % (1 << 20)
		rnd.RecordRead("", false, lo, lo+1000, 0, 0, 0)
	}
	if sig := rnd.Signature(); sig.SeqScore > 0.2 {
		t.Fatalf("random roam: seq_score=%v, want near 0", sig.SeqScore)
	}
	if sig := rnd.Signature(); sig.SelectivityP50 <= 0 || sig.SelectivityP50 > 0.01 {
		t.Fatalf("random roam: selectivity_p50=%v, want ~1000/2^20", sig.SelectivityP50)
	}
}

// sliceTarget is a naive reference engine for replay tests.
type sliceTarget struct{ vals []int64 }

func (s *sliceTarget) Count(_ context.Context, lo, hi int64) (int64, error) {
	var n int64
	for _, v := range s.vals {
		if v >= lo && v < hi {
			n++
		}
	}
	return n, nil
}

func (s *sliceTarget) Sum(_ context.Context, lo, hi int64) (int64, error) {
	var n int64
	for _, v := range s.vals {
		if v >= lo && v < hi {
			n += v
		}
	}
	return n, nil
}

func (s *sliceTarget) Insert(_ context.Context, v int64) error {
	s.vals = append(s.vals, v)
	return nil
}

func (s *sliceTarget) Delete(_ context.Context, v int64) (bool, error) {
	for i, x := range s.vals {
		if x == v {
			s.vals = append(s.vals[:i], s.vals[i+1:]...)
			return true, nil
		}
	}
	return false, nil
}

func refValues(n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	return vals
}

func TestReplayVerify(t *testing.T) {
	// Build a trace by executing ops against the reference engine and
	// recording its own answers as checksums.
	src := &sliceTarget{vals: refValues(500)}
	ctx := context.Background()
	var recs []Record
	for i := int64(0); i < 60; i++ {
		lo := (i * 37) % 1400
		switch i % 4 {
		case 0:
			n, _ := src.Count(ctx, lo, lo+100)
			recs = append(recs, Record{Kind: RecCount, Lo: lo, Hi: lo + 100, Result: n})
		case 1:
			n, _ := src.Sum(ctx, lo, lo+100)
			recs = append(recs, Record{Kind: RecSum, Lo: lo, Hi: lo + 100, Result: n})
		case 2:
			src.Insert(ctx, 5000+i)
			recs = append(recs, Record{Kind: RecInsert, Lo: 5000 + i})
		default:
			found, _ := src.Delete(ctx, lo)
			var res int64
			if found {
				res = 1
			}
			recs = append(recs, Record{Kind: RecDelete, Lo: lo, Result: res})
		}
	}

	rep, err := Replay(ctx, recs, &sliceTarget{vals: refValues(500)}, ReplayOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != len(recs) || rep.Mismatches != 0 {
		t.Fatalf("clean replay: %+v", rep)
	}
	if rep.Reads+rep.Writes != rep.Records {
		t.Fatalf("read/write split %d+%d != %d", rep.Reads, rep.Writes, rep.Records)
	}

	// Corrupt one read checksum: exactly one mismatch, pinned in First.
	bad := append([]Record(nil), recs...)
	bad[8].Result += 3
	rep, err = Replay(ctx, bad, &sliceTarget{vals: refValues(500)}, ReplayOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 1 || rep.First == nil || rep.First.Index != 8 {
		t.Fatalf("corrupted replay: %+v (first %+v)", rep, rep.First)
	}
}

func TestReplayPacing(t *testing.T) {
	// Three records 30ms apart in capture time.
	recs := []Record{
		{Kind: RecCount, T: 0, Lo: 0, Hi: 1},
		{Kind: RecCount, T: 30e6, Lo: 0, Hi: 1},
		{Kind: RecCount, T: 60e6, Lo: 0, Hi: 1},
	}
	tgt := &sliceTarget{}
	start := time.Now()
	if _, err := Replay(context.Background(), recs, tgt, ReplayOptions{Pace: 1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 55*time.Millisecond {
		t.Fatalf("Pace 1 replayed 60ms of capture time in %v", d)
	}
	start = time.Now()
	if _, err := Replay(context.Background(), recs, tgt, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("unpaced replay took %v", d)
	}
	// Cancellation interrupts a paced sleep promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start = time.Now()
	if _, err := Replay(ctx, recs, tgt, ReplayOptions{Pace: 0.01}); err == nil {
		t.Fatal("cancelled paced replay returned nil error")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cancellation took %v to interrupt the pacing sleep", d)
	}
}

// TestTruncatedTailTolerated chops a trace mid-record: the reader must
// return every complete record and drop the torn tail.
func TestTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	r, err := New(Options{Ring: 64, Sink: path}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		r.RecordRead("", false, i, i+1, 0, 0, 0)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, headerSize+3*recordSize+17); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("truncated trace returned %d records, want 3", len(recs))
	}
	lows := []int{int(recs[0].Lo), int(recs[1].Lo), int(recs[2].Lo)}
	if !sort.IntsAreSorted(lows) {
		t.Fatalf("records out of order: %v", lows)
	}
}
