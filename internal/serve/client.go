package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client-side errors.
var (
	// ErrClientClosed means the client (or its connection) is gone.
	ErrClientClosed = errors.New("serve: client closed")
	// ErrDraining means the server refused the request because it is
	// shutting down gracefully.
	ErrDraining = errors.New("serve: server draining")
	// ErrInternal is a server-side execution failure.
	ErrInternal = errors.New("serve: internal server error")
	// ErrBadRequest means the server deemed the request structurally
	// invalid.
	ErrBadRequest = errors.New("serve: bad request")
)

// Client is a pipelined protocol client: any number of goroutines may
// issue requests concurrently over one connection; a single reader
// goroutine dispatches the out-of-order responses by correlation id.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	nextID atomic.Uint64

	mu      sync.Mutex
	pend    map[uint64]chan Response
	closed  bool
	lastErr error

	done chan struct{}
}

// Dial connects a client to a server address.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:   nc,
		bw:   bufio.NewWriter(nc),
		pend: make(map[uint64]chan Response),
		done: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop dispatches responses to their waiters until the connection
// dies, then fails every outstanding request.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.nc)
	var buf []byte
	var err error
	for {
		var p []byte
		p, err = ReadFrame(br, buf)
		if err != nil {
			break
		}
		buf = p[:0]
		var r Response
		r, err = DecodeResponse(p)
		if err != nil {
			break
		}
		c.mu.Lock()
		ch := c.pend[r.ID]
		delete(c.pend, r.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- r
		}
	}
	if errors.Is(err, io.EOF) {
		err = ErrClientClosed
	}
	c.fail(err)
}

// fail marks the client dead and unblocks every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.lastErr = err
		close(c.done)
	}
	c.mu.Unlock()
	c.nc.Close()
}

// Close tears the connection down; outstanding requests fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return nil
}

// Do sends one request and waits for its response. The correlation id
// is assigned by the client (q.ID is ignored); if q.TTLus is zero and
// ctx carries a deadline, the remaining budget is sent as the TTL so
// the server can shed the request when the caller stops caring. Do
// reports transport-level failure; protocol-level outcomes come back
// in the Response status.
func (c *Client) Do(ctx context.Context, q Request) (Response, error) {
	q.ID = c.nextID.Add(1)
	if q.TTLus == 0 {
		if dl, ok := ctx.Deadline(); ok {
			us := time.Until(dl).Microseconds()
			if us <= 0 {
				return Response{}, context.DeadlineExceeded
			}
			if us > int64(^uint32(0)) {
				us = int64(^uint32(0))
			}
			q.TTLus = uint32(us)
		}
	}
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.closed {
		err := c.lastErr
		c.mu.Unlock()
		return Response{}, err
	}
	c.pend[q.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	buf := AppendRequestFrame(nil, q)
	_, err := c.bw.Write(buf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.forget(q.ID)
		c.fail(err)
		return Response{}, err
	}

	select {
	case r := <-ch:
		return r, nil
	case <-ctx.Done():
		c.forget(q.ID)
		return Response{}, ctx.Err()
	case <-c.done:
		c.forget(q.ID)
		return Response{}, c.lastErr
	}
}

// forget abandons a pending request (its late response, if any, is
// dropped by the reader).
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pend, id)
	c.mu.Unlock()
}

// statusErr maps a protocol status to a client error (nil for OK).
func statusErr(s Status) error {
	switch s {
	case StatusOK:
		return nil
	case StatusOverloaded:
		return ErrOverloaded
	case StatusDeadline:
		return context.DeadlineExceeded
	case StatusBadRequest:
		return ErrBadRequest
	case StatusDraining:
		return ErrDraining
	default:
		return fmt.Errorf("%w: status %s", ErrInternal, s)
	}
}

// Count evaluates count(*) where lo <= A < hi over the wire.
func (c *Client) Count(ctx context.Context, lo, hi int64) (int64, error) {
	r, err := c.Do(ctx, Request{Op: OpCount, Lo: lo, Hi: hi})
	if err != nil {
		return 0, err
	}
	return r.Value, statusErr(r.Status)
}

// Sum evaluates sum(A) where lo <= A < hi over the wire.
func (c *Client) Sum(ctx context.Context, lo, hi int64) (int64, error) {
	r, err := c.Do(ctx, Request{Op: OpSum, Lo: lo, Hi: hi})
	if err != nil {
		return 0, err
	}
	return r.Value, statusErr(r.Status)
}

// Insert adds one instance of v over the wire.
func (c *Client) Insert(ctx context.Context, v int64) error {
	r, err := c.Do(ctx, Request{Op: OpInsert, Lo: v})
	if err != nil {
		return err
	}
	return statusErr(r.Status)
}

// Delete removes one instance of v over the wire, reporting whether
// one existed.
func (c *Client) Delete(ctx context.Context, v int64) (bool, error) {
	r, err := c.Do(ctx, Request{Op: OpDelete, Lo: v})
	if err != nil {
		return false, err
	}
	return r.Value == 1, statusErr(r.Status)
}

// Stats returns the server's row and shard counts over the wire.
func (c *Client) Stats(ctx context.Context) (rows, shards int64, err error) {
	r, err := c.Do(ctx, Request{Op: OpStats})
	if err != nil {
		return 0, 0, err
	}
	return r.Value, r.Aux, statusErr(r.Status)
}
