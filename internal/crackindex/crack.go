package crackindex

import (
	"context"
	"slices"
	"sort"
	"time"
)

// opCtx carries the per-operation cost accumulator, the query tag used
// by the trace hook (Figure 8 timelines), and the caller's context: a
// nil ctx means context.Background semantics (never cancelled), and the
// first context error observed while parked on a latch is recorded in
// err so the query paths can abandon remaining work promptly.
type opCtx struct {
	tag string
	ctx context.Context
	err error
	OpStats
}

// canceled reports whether the operation's context is done, latching
// the error into err on first observation.
func (c *opCtx) canceled() bool {
	if c.err != nil {
		return true
	}
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return true
		}
	}
	return false
}

// crackBound ensures a crack boundary exists at value v and returns its
// array position: every value at a position < pos is < v, every value
// at a position >= pos is >= v. Once created, a boundary position never
// changes (later cracks only subdivide pieces), so returned positions
// are valid forever.
//
// In LatchPiece mode this implements the full protocol of §5.3:
// navigate to the piece under the structure latch, block on (or, under
// conflict avoidance, try) the piece's write latch, re-determine the
// bound after waking up if the piece was split in the meantime
// (Figure 10), physically partition, then publish the split.
//
// ok is false only when refinement was forgone (conflict avoidance or
// a conflicting user-transaction lock).
func (ix *Index) crackBound(v int64, ctx *opCtx) (pos int, ok bool) {
	// The maxKey sentinel is the tail piece's open upper bound: the
	// "boundary" is the array end, and no piece can ever contain it
	// strictly (a query like DeleteValue(maxKey-1) probes [v, v+1) =
	// [maxKey-1, maxKey) and reaches here).
	if v == maxKey {
		return ix.arr.Len(), true
	}
	if ix.opts.Latching != LatchPiece {
		return ix.crackBoundExclusive(v, ctx), true
	}
	ix.mu.Lock()
	p := ix.findPieceLocked(v)
	ix.mu.Unlock()
	for {
		// Exact match: the boundary already exists. lo and loVal are
		// immutable after publication (splits keep the left part), so
		// no latch is needed for this check or the returned position.
		if p.loVal == v {
			return p.lo, true
		}
		if !ix.pieceWriteLock(p, v, ctx) {
			return 0, false
		}
		// Re-validate under the piece latch: the piece may have been
		// split (hiVal narrowed) while this query waited (Figure 10).
		// loVal < v still holds: loVal is immutable and was checked.
		if v < p.hiVal {
			break
		}
		ix.pieceWriteUnlock(ctx, p)
		p = ix.redetermine(p, v)
	}
	// p is write-latched and v falls strictly inside it: crack.
	start := time.Now()
	ctx.Touched += int64(p.hi - p.lo)
	switch {
	case ix.opts.GroupCracking && ix.groupCrack(p, v, &pos):
		// grouped multi-pivot crack done
	case ix.opts.Stochastic && ix.stochasticCrack(p, v, &pos):
		// crack plus a random auxiliary pivot done
	default:
		pos = ix.arr.CrackInTwo(p.lo, p.hi, v)
		ix.mu.Lock()
		ix.splitTwoLocked(p, v, pos)
		ix.mu.Unlock()
	}
	d := time.Since(start)
	ctx.Crack += d
	ix.stats.CrackTime.Add(d)
	ix.stats.Cracks.Inc()
	ix.traceCrack(ctx, p, v)
	ix.pieceWriteUnlock(ctx, p)
	return pos, true
}

// groupCrack implements the §7 "dynamic algorithms" extension: the
// holder of p's write latch cracks not only for its own bound v but
// for the bounds of every crack currently queued on p, in a single
// multi-pivot pass. It reports false (and does nothing) when no other
// bound falls inside the piece. Caller holds p's write latch; *pos
// receives the split position of v.
//
// Safety of the chained structural splits: the intermediate pieces
// created here become reachable only through the structure latch
// (held for the whole chain) or through p.next (readable only under
// p's latch, which we hold exclusively), so no other thread can
// observe a partially split chain.
func (ix *Index) groupCrack(p *piece, v int64, pos *int) bool {
	pivots := append([]int64{v}, p.latch.WaiterBounds()...)
	sort.Slice(pivots, func(i, j int) bool { return pivots[i] < pivots[j] })
	// Keep pivots strictly inside the piece, deduplicated.
	kept := pivots[:0]
	for _, b := range pivots {
		if b > p.loVal && b < p.hiVal && (len(kept) == 0 || kept[len(kept)-1] != b) {
			kept = append(kept, b)
		}
	}
	if len(kept) <= 1 {
		return false
	}
	positions := ix.arr.CrackMulti(p.lo, p.hi, kept)
	ix.mu.Lock()
	cur := p
	for i, pv := range kept {
		cur = ix.splitTwoLocked(cur, pv, positions[i])
	}
	ix.mu.Unlock()
	for i, pv := range kept {
		if pv == v {
			*pos = positions[i]
		}
	}
	ix.stats.GroupCracks.Inc()
	ix.stats.GroupedBounds.Add(int64(len(kept) - 1))
	return true
}

// stochasticCrack implements the DDR flavour of stochastic cracking
// [16]: alongside the query's own bound v, crack at a pseudo-random
// value sampled from the piece, so that skewed or sequential workloads
// still cut large pieces down geometrically. Returns false when the
// piece is already small (plain crack suffices). Caller holds p's
// write latch; *pos receives v's split position.
func (ix *Index) stochasticCrack(p *piece, v int64, pos *int) bool {
	minPiece := ix.opts.StochasticMinPiece
	if minPiece <= 0 {
		minPiece = 1024
	}
	if p.hi-p.lo < minPiece {
		return false
	}
	// Estimate the piece's value quartiles from nine values at hashed
	// positions and crack at all three alongside the query's own
	// bound. A single random pivot leaves up to the whole far side of
	// the piece uncut — and under a sequential sweep the far side is
	// never touched again, so one unlucky draw pins the worst case
	// near the plain-cracking one. Three quartile pivots bound the
	// largest residual chunk near a quarter of the piece with high
	// probability, whatever physical order earlier partition passes
	// left behind. The xorshifted offset hash keeps the sampled
	// positions deterministic per piece state yet well spread.
	h := uint64(p.lo)*0x9e3779b97f4a7c15 + uint64(p.hi)*0xbf58476d1ce4e5b9
	n := uint64(p.hi - p.lo)
	var s [9]int64
	for i := range s {
		h ^= h >> 29
		h *= 0xff51afd7ed558ccd
		s[i] = ix.arr.Value(p.lo + int(h%n))
	}
	sort.Slice(s[:], func(i, j int) bool { return s[i] < s[j] })
	pivots := make([]int64, 1, 4)
	pivots[0] = v
	for _, r := range [3]int64{s[2], s[4], s[6]} {
		if r <= p.loVal || r >= p.hiVal || r == v {
			continue
		}
		pivots = append(pivots, r)
	}
	if len(pivots) == 1 {
		return false // every sample degenerate: plain crack
	}
	sort.Slice(pivots, func(i, j int) bool { return pivots[i] < pivots[j] })
	pivots = slices.Compact(pivots)
	positions := ix.arr.CrackMulti(p.lo, p.hi, pivots)
	ix.mu.Lock()
	cur := p
	for i, pv := range pivots {
		cur = ix.splitTwoLocked(cur, pv, positions[i])
	}
	ix.mu.Unlock()
	for i, pv := range pivots {
		if pv == v {
			*pos = positions[i]
			break
		}
	}
	ix.stats.StochasticCracks.Inc()
	return true
}

// redetermine walks the piece list from p to the piece currently
// containing v, as in Figure 10: "every query achieves that by walking
// through the pieces of the array starting from the original piece
// they tried to latch". Since splits keep the left part, the target is
// always reachable by walking right; the prev walk is defensive.
func (ix *Index) redetermine(p *piece, v int64) *piece {
	ix.mu.Lock()
	ix.stats.Redeterminations.Inc()
	for v >= p.hiVal && p.next != nil {
		p = p.next
	}
	for v < p.loVal && p.prev != nil {
		p = p.prev
	}
	ix.mu.Unlock()
	return p
}

// pieceWriteLock acquires p's write latch according to the conflict
// policy, recording wait time and conflicts. It consults the user-lock
// probe first: a system transaction must verify that no concurrent
// user transaction holds conflicting locks and, refinement being
// optional, it simply forgoes the work if one does (§3.3).
func (ix *Index) pieceWriteLock(p *piece, bound int64, ctx *opCtx) bool {
	if ix.opts.LockProbe != nil && ix.opts.LockProbe() {
		ctx.Skipped = true
		ix.stats.Skipped.Inc()
		return false
	}
	ix.traceWant(ctx, p, true, bound)
	if ix.opts.OnConflict == Skip {
		if !p.latch.TryLock() {
			ctx.Conflicts++
			ctx.Skipped = true
			ix.stats.Conflicts.Inc()
			ix.stats.Skipped.Inc()
			return false
		}
		ix.traceAcquired(ctx, p, true)
		return true
	}
	w, err := p.latch.LockCtx(ctx.ctx, bound)
	ctx.addWait(w)
	if w > 0 {
		ix.stats.Conflicts.Inc()
		ix.stats.WaitTime.Add(w)
	}
	if err != nil {
		// Deadline expired or the query was cancelled while parked:
		// the latch was never acquired, and the query abandons its
		// optional refinement and its answer alike.
		ctx.err = err
		return false
	}
	ix.traceAcquired(ctx, p, true)
	return true
}

func (ix *Index) pieceWriteUnlock(ctx *opCtx, p *piece) {
	ix.traceRelease(ctx, p, true)
	p.latch.Unlock()
}

// pieceReadLock acquires p's read latch, recording wait time.
// Aggregation reads are never skipped: they are required for the
// answer, and they conflict only with an active crack of this piece.
// It reports false only when the operation's context expired while
// parked — the answer is abandoned, not merely unrefined.
func (ix *Index) pieceReadLock(p *piece, ctx *opCtx) bool {
	ix.traceWant(ctx, p, false, 0)
	w, err := p.latch.RLockCtx(ctx.ctx)
	ctx.addWait(w)
	if w > 0 {
		ix.stats.Conflicts.Inc()
		ix.stats.WaitTime.Add(w)
	}
	if err != nil {
		ctx.err = err
		return false
	}
	ix.traceAcquired(ctx, p, false)
	return true
}

func (ix *Index) pieceReadUnlock(ctx *opCtx, p *piece) {
	ix.traceRelease(ctx, p, false)
	p.latch.RUnlock()
}

// crackBoundExclusive is the structurally-exclusive variant used by
// LatchColumn mode (caller holds the column write latch) and LatchNone
// mode (single-threaded). The structure latch is still taken around
// TOC updates in LatchColumn mode so that concurrent read-side piece
// walks observe consistent links.
func (ix *Index) crackBoundExclusive(v int64, ctx *opCtx) int {
	if v == maxKey { // sentinel: the array end (see crackBound)
		return ix.arr.Len()
	}
	ix.structLock()
	p := ix.findPieceLocked(v)
	ix.structUnlock()
	if p.loVal == v {
		return p.lo
	}
	start := time.Now()
	ctx.Touched += int64(p.hi - p.lo)
	var pos int
	if !(ix.opts.Stochastic && ix.stochasticCrack(p, v, &pos)) {
		pos = ix.arr.CrackInTwo(p.lo, p.hi, v)
		ix.structLock()
		ix.splitTwoLocked(p, v, pos)
		ix.structUnlock()
	}
	d := time.Since(start)
	ctx.Crack += d
	ix.stats.CrackTime.Add(d)
	ix.stats.Cracks.Inc()
	ix.traceCrack(ctx, p, v)
	return pos
}

// crackPair ensures boundaries exist at both lo and hi, preferring the
// single-pass crack-in-three when both bounds fall into the same piece.
// On success it returns the two positions. If keepMiddle is true and
// the crack-in-three path was taken, the middle piece is returned
// still write-latched (LatchPiece mode only) so the caller may
// downgrade it and aggregate in place; otherwise mid is nil.
//
// ok is false only when refinement was skipped (the caller then
// answers by scanning).
func (ix *Index) crackPair(lo, hi int64, keepMiddle bool, ctx *opCtx) (posLo, posHi int, mid *piece, ok bool) {
	if ix.opts.Latching != LatchPiece {
		posLo, posHi = ix.crackPairExclusive(lo, hi, ctx)
		return posLo, posHi, nil, true
	}

	// Crack-in-three fast path when both bounds are strictly inside
	// the same piece.
	ix.mu.Lock()
	p := ix.findPieceLocked(lo)
	same := p.loVal < lo && hi < p.hiVal
	ix.mu.Unlock()
	if same {
		posLo, posHi, mid, ok, done := ix.crackThreePiece(p, lo, hi, keepMiddle, ctx)
		if done {
			return posLo, posHi, mid, ok
		}
		// The piece was split while waiting and the bounds no longer
		// share a piece: fall through to independent bound cracks.
	}

	if ix.opts.ParallelBounds {
		// The two cracking actions are independent when they operate
		// on different pieces, and may be performed concurrently
		// (§5.3 "Optimizations"). Even if a concurrent split moves
		// both bounds into one piece, each crackBound is individually
		// correct. If one bound's refinement is skipped under
		// conflict avoidance, the other still proceeds ("even if
		// there is a conflict for one of them the query actually
		// proceeds with the second bound").
		type res struct {
			pos int
			ok  bool
			st  opCtx
		}
		ch := make(chan res, 1)
		// Capture the tag and context values, not ctx itself: a
		// goroutine closure holding the *opCtx would force every
		// caller's opCtx to the heap — one allocation per query on
		// all paths, including the ones that never spawn a goroutine.
		tag, cctx := ctx.tag, ctx.ctx
		go func() {
			sub := opCtx{tag: tag, ctx: cctx}
			pos, ok := ix.crackBound(hi, &sub)
			ch <- res{pos, ok, sub}
		}()
		posLo, okLo := ix.crackBound(lo, ctx)
		r := <-ch
		ctx.Wait += r.st.Wait
		ctx.Crack += r.st.Crack
		ctx.Touched += r.st.Touched
		ctx.Conflicts += r.st.Conflicts
		ctx.Skipped = ctx.Skipped || r.st.Skipped
		if ctx.err == nil {
			ctx.err = r.st.err
		}
		if !okLo || !r.ok {
			return 0, 0, nil, false
		}
		return posLo, r.pos, nil, true
	}

	posLo, okLo := ix.crackBound(lo, ctx)
	if !okLo {
		return 0, 0, nil, false
	}
	posHi, okHi := ix.crackBound(hi, ctx)
	if !okHi {
		return 0, 0, nil, false
	}
	return posLo, posHi, nil, true
}

// crackThreePiece attempts the latched crack-in-three of piece p at
// (lo, hi). done is false when, after acquiring the latch, the bounds
// no longer fall strictly inside p and the caller must fall back; ok
// is false when refinement was skipped. When keepMiddle and ok, mid is
// returned write-latched.
func (ix *Index) crackThreePiece(p *piece, lo, hi int64, keepMiddle bool, ctx *opCtx) (posLo, posHi int, mid *piece, ok, done bool) {
	if !ix.pieceWriteLock(p, lo, ctx) {
		return 0, 0, nil, false, true
	}
	if !(p.loVal < lo && hi < p.hiVal) {
		ix.pieceWriteUnlock(ctx, p)
		return 0, 0, nil, false, false
	}
	start := time.Now()
	ctx.Touched += int64(p.hi - p.lo)
	posLo, posHi = ix.arr.CrackInThree(p.lo, p.hi, lo, hi)
	ix.mu.Lock()
	mid = ix.splitThreeLocked(p, lo, hi, posLo, posHi, keepMiddle)
	ix.mu.Unlock()
	d := time.Since(start)
	ctx.Crack += d
	ix.stats.CrackTime.Add(d)
	ix.stats.Cracks.Inc()
	ix.traceCrack(ctx, p, lo)
	ix.pieceWriteUnlock(ctx, p)
	if keepMiddle {
		// mid was created already write-latched; the caller downgrades
		// it and aggregates the qualifying range in place.
		return posLo, posHi, mid, true, true
	}
	return posLo, posHi, nil, true, true
}

// crackPairExclusive is the LatchColumn/LatchNone variant of crackPair.
func (ix *Index) crackPairExclusive(lo, hi int64, ctx *opCtx) (posLo, posHi int) {
	ix.structLock()
	p := ix.findPieceLocked(lo)
	same := p.loVal < lo && hi < p.hiVal
	ix.structUnlock()
	if same {
		start := time.Now()
		ctx.Touched += int64(p.hi - p.lo)
		posLo, posHi = ix.arr.CrackInThree(p.lo, p.hi, lo, hi)
		ix.structLock()
		ix.splitThreeLocked(p, lo, hi, posLo, posHi, false)
		ix.structUnlock()
		d := time.Since(start)
		ctx.Crack += d
		ix.stats.CrackTime.Add(d)
		ix.stats.Cracks.Inc()
		ix.traceCrack(ctx, p, lo)
		return posLo, posHi
	}
	posLo = ix.crackBoundExclusive(lo, ctx)
	posHi = ix.crackBoundExclusive(hi, ctx)
	return posLo, posHi
}
