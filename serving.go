package adaptix

import (
	"context"
	"net"

	"adaptix/internal/serve"
)

// ServeOptions tunes the network serving front; see serve.Options for
// the field semantics (batching window, admission budget, per-connection
// quota, frame timeout). The zero value gives the defaults.
type ServeOptions = serve.Options

// ServeStats is the serving front's live readout — the `serve` block
// of the /snapshot document.
type ServeStats = serve.Stats

// ServeClient is a pipelined client for the serving front's protocol:
// any number of goroutines may issue requests concurrently over one
// connection, and responses are matched by correlation id. Obtain one
// with DialServe.
type ServeClient = serve.Client

// DialServe connects a protocol client to a serving front's address.
func DialServe(addr string) (*ServeClient, error) { return serve.Dial(addr) }

// Server is a running serving front over one Index: the adaptixd
// network protocol (see docs/SERVING.md) with shared-scan query
// batching and admission control. Obtain one from Index.Serve or
// Index.ServeAddr; stop it with Drain (graceful: flush batches, wait
// for in-flight work, final checkpoint) or Close (abrupt).
type Server struct {
	ix  *Index
	srv *serve.Server
}

// Serve starts the serving front on ln. The server takes ownership of
// the listener and begins accepting immediately; its instruments
// appear on the index's /metrics and /snapshot routes.
func (ix *Index) Serve(ln net.Listener, o ServeOptions) *Server {
	s := &Server{
		ix: ix,
		srv: serve.New(serve.Backend{
			Col: ix.col,
			Ing: ix.ing,
			Obs: ix.obs,
		}, ln, o),
	}
	ix.srv.Store(s.srv)
	return s
}

// ServeAddr is Serve over a fresh TCP listener on addr (":0" picks a
// free port; read it back from Addr).
func (ix *Index) ServeAddr(addr string, o ServeOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ix.Serve(ln, o), nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() net.Addr { return s.srv.Addr() }

// Stats returns the live serving readout.
func (s *Server) Stats() ServeStats { return s.srv.Stats() }

// Drain shuts the front down gracefully: stop accepting, reject new
// requests as draining, flush pending batches, wait for in-flight
// requests (bounded by ctx), close connections, then take a final
// durability checkpoint (durable indexes only). It returns ctx.Err()
// if in-flight work outlived the context.
func (s *Server) Drain(ctx context.Context) error {
	err := s.srv.Drain(ctx)
	s.ix.srv.CompareAndSwap(s.srv, nil)
	s.ix.Checkpoint()
	return err
}

// Close shuts the front down abruptly (no flush, no checkpoint).
func (s *Server) Close() error {
	s.ix.srv.CompareAndSwap(s.srv, nil)
	return s.srv.Close()
}
