package baseline

import (
	"context"
	"sync"
	"testing"

	"adaptix/internal/engine"
	"adaptix/internal/workload"
)

// Compile-time interface checks.
var (
	_ engine.Engine = (*Scan)(nil)
	_ engine.Engine = (*FullSort)(nil)
)

func TestScanMatchesBruteForce(t *testing.T) {
	d := workload.NewUniqueUniform(5000, 3)
	s := NewScan(d.Values)
	if s.Name() != "scan" {
		t.Fatal("bad name")
	}
	for _, r := range [][2]int64{{0, 5000}, {100, 200}, {-10, 10}, {4999, 6000}, {300, 300}} {
		if got := qCount(s, r[0], r[1]).Value; got != d.TrueCount(r[0], r[1]) {
			t.Fatalf("Count(%d,%d) = %d", r[0], r[1], got)
		}
		if got := qSum(s, r[0], r[1]).Value; got != d.TrueSum(r[0], r[1]) {
			t.Fatalf("Sum(%d,%d) = %d", r[0], r[1], got)
		}
	}
}

func TestFullSortMatchesBruteForce(t *testing.T) {
	d := workload.NewDuplicates(8000, 700, 5)
	f := NewFullSort(d.Values)
	if f.Name() != "sort" {
		t.Fatal("bad name")
	}
	for _, r := range [][2]int64{{0, 700}, {100, 200}, {-5, 5}, {699, 700}, {50, 50}} {
		if got := qCount(f, r[0], r[1]).Value; got != d.TrueCount(r[0], r[1]) {
			t.Fatalf("Count(%d,%d) = %d", r[0], r[1], got)
		}
		if got := qSum(f, r[0], r[1]).Value; got != d.TrueSum(r[0], r[1]) {
			t.Fatalf("Sum(%d,%d) = %d", r[0], r[1], got)
		}
	}
}

func TestFullSortBuildsExactlyOnceAndCharges(t *testing.T) {
	d := workload.NewUniqueUniform(200000, 7)
	f := NewFullSort(d.Values)
	r1 := qCount(f, 10, 20)
	if r1.Refine == 0 {
		t.Fatal("first query did not charge the index build")
	}
	r2 := qCount(f, 10, 20)
	if r2.Refine != 0 || r2.Wait != 0 {
		t.Fatalf("second query paid again: %+v", r2)
	}
}

func TestFullSortConcurrentFirstQueries(t *testing.T) {
	d := workload.NewUniqueUniform(300000, 9)
	f := NewFullSort(d.Values)
	const clients = 8
	var wg sync.WaitGroup
	results := make([]engine.Result, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = qCount(f, 1000, 2000)
		}(c)
	}
	wg.Wait()
	var builders int
	for _, r := range results {
		if r.Value != 1000 {
			t.Fatalf("wrong count %d", r.Value)
		}
		if r.Refine > 0 {
			builders++
		}
	}
	if builders != 1 {
		t.Fatalf("index built by %d clients, want exactly 1", builders)
	}
	// FullSort does not modify the base column.
	fresh := workload.NewUniqueUniform(300000, 9)
	for i, v := range d.Values {
		if v != fresh.Values[i] {
			t.Fatal("base column mutated")
		}
	}
}

func TestScanIsStateless(t *testing.T) {
	d := workload.NewUniqueUniform(10000, 11)
	s := NewScan(d.Values)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if qCount(s, 100, 5000).Value != 4900 {
					panic("scan mismatch")
				}
			}
		}()
	}
	wg.Wait()
}

// qCount / qSum drive the context-aware Engine surface with
// context.Background(), the uncancellable fast path the tests measure.
func qCount(e engine.Engine, lo, hi int64) engine.Result {
	r, _ := e.Count(context.Background(), lo, hi)
	return r
}

func qSum(e engine.Engine, lo, hi int64) engine.Result {
	r, _ := e.Sum(context.Background(), lo, hi)
	return r
}
