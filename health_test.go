package adaptix_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sort"
	"testing"

	"adaptix"
)

func getJSON(t *testing.T, ix *adaptix.Index, path string) (int, []byte) {
	t.Helper()
	w := httptest.NewRecorder()
	ix.Observe().ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w.Code, w.Body.Bytes()
}

func keysOf(t *testing.T, raw []byte) []string {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not a JSON object: %v\n%s", err, raw)
	}
	out := make([]string, 0, len(doc))
	for k := range doc {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func wantKeys(t *testing.T, what string, raw []byte, want ...string) {
	t.Helper()
	got := keysOf(t, raw)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("%s keys = %v, want %v (schema drift: update the goldens AND the scrapers)", what, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s keys = %v, want %v (schema drift: update the goldens AND the scrapers)", what, got, want)
		}
	}
}

// workloadKeys is the golden field set of the workload signature block
// (/snapshot's "workload" and the whole /workload document).
var workloadKeys = []string{
	"enabled", "captured", "dropped", "reads", "writes", "write_frac",
	"width_p50", "width_p99", "selectivity_p50", "selectivity_p99",
	"key_jump_p50", "key_jump_p99", "locality", "seq_score",
}

// TestWorkloadGoldenSchema pins the JSON shape of the /workload
// document on an armed recorder and sanity-checks the characterizer:
// a read/write mix must show up in the mix fields and the selectivity
// quantiles once the key domain is known.
func TestWorkloadGoldenSchema(t *testing.T) {
	ix, err := adaptix.New(seqValues(4096), adaptix.WithShards(4),
		adaptix.WithWorkloadCapture(adaptix.CaptureOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()
	for i := int64(0); i < 40; i++ {
		if _, err := ix.Count(ctx, i*100, i*100+300); err != nil {
			t.Fatal(err)
		}
		if err := ix.Insert(ctx, i); err != nil {
			t.Fatal(err)
		}
	}

	code, body := getJSON(t, ix, "/workload")
	if code != 200 {
		t.Fatalf("/workload status %d", code)
	}
	wantKeys(t, "/workload", body, workloadKeys...)
	var sig adaptix.WorkloadStats
	if err := json.Unmarshal(body, &sig); err != nil {
		t.Fatal(err)
	}
	if !sig.Enabled {
		t.Fatal("armed recorder reports enabled=false")
	}
	if sig.Reads != 40 || sig.Writes != 40 {
		t.Fatalf("signature counted %d reads / %d writes, want 40/40", sig.Reads, sig.Writes)
	}
	if sig.WriteFrac != 0.5 {
		t.Fatalf("write_frac = %v, want 0.5", sig.WriteFrac)
	}
	if sig.SelectivityP50 <= 0 {
		t.Fatalf("selectivity_p50 = %v, want > 0 (domain installed at New)", sig.SelectivityP50)
	}
	// The stride-100 walk is a sequential sweep: each query's lower
	// bound lands 200 before the previous query's upper bound, well
	// within one predicate width (300), so every consecutive pair is a
	// sequentiality hit.
	if sig.SeqScore < 0.9 {
		t.Fatalf("sequential sweep scored seq_score=%v, want >= 0.9", sig.SeqScore)
	}
	if sig.Dropped != 0 {
		t.Fatalf("dropped = %d without a sink, want 0", sig.Dropped)
	}
}

// TestSnapshotGoldenSchema pins the JSON shape of the /snapshot and
// /health documents: these are scraped by cmd/adaptixstat,
// cmd/crackviz, and external probes, so a renamed or dropped field is
// a breaking change that must fail loudly here, not in a dashboard.
func TestSnapshotGoldenSchema(t *testing.T) {
	ix, err := adaptix.New(seqValues(4096), adaptix.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()
	for i := int64(0); i < 10; i++ {
		if _, err := ix.Count(ctx, i*100, i*100+300); err != nil {
			t.Fatal(err)
		}
	}

	code, body := getJSON(t, ix, "/snapshot")
	if code != 200 {
		t.Fatalf("/snapshot status %d", code)
	}
	wantKeys(t, "/snapshot", body,
		"method", "rows", "shards", "ingest", "obs", "convergence", "workload", "heatmap", "shard_stats")

	var doc struct {
		Convergence json.RawMessage   `json:"convergence"`
		Workload    json.RawMessage   `json:"workload"`
		Heatmap     json.RawMessage   `json:"heatmap"`
		ShardStats  []json.RawMessage `json:"shard_stats"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, "convergence", doc.Convergence,
		"series", "touched_p50", "touched_p99", "queries", "visits", "covered", "covered_frac")
	// The workload block is schema-complete (all zeros) even without
	// WithWorkloadCapture; TestWorkloadGoldenSchema covers the armed
	// recorder and the /workload route.
	wantKeys(t, "workload", doc.Workload, workloadKeys...)
	var sig adaptix.WorkloadStats
	if err := json.Unmarshal(doc.Workload, &sig); err != nil {
		t.Fatal(err)
	}
	if sig.Enabled || sig.Captured != 0 {
		t.Fatalf("capture-disabled index reports workload %+v, want zeros", sig)
	}
	wantKeys(t, "heatmap", doc.Heatmap, "lo", "hi", "bucket_width", "reads", "writes")
	var heat adaptix.HeatSnapshot
	if err := json.Unmarshal(doc.Heatmap, &heat); err != nil {
		t.Fatal(err)
	}
	if heat.BucketWidth <= 0 {
		t.Fatalf("heatmap not installed: %+v", heat)
	}
	var reads int64
	for _, v := range heat.Reads {
		reads += v
	}
	if reads == 0 {
		t.Fatal("10 range queries left no heatmap reads")
	}
	if len(doc.ShardStats) != 4 {
		t.Fatalf("%d shard_stats entries, want 4", len(doc.ShardStats))
	}

	code, body = getJSON(t, ix, "/health")
	if code != 200 {
		t.Fatalf("/health status %d on a healthy index\n%s", code, body)
	}
	wantKeys(t, "/health", body, "status", "when", "rules")
	var rep adaptix.HealthReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Rules) != 6 {
		t.Fatalf("healthy report = %+v, want 6 ok rules", rep)
	}
	for _, r := range rep.Rules {
		if r.Evidence == nil {
			t.Fatalf("rule %q serialized without evidence", r.Rule)
		}
	}
}

// TestHealthWALGrowthDegrades forces the wal-since-checkpoint rule on
// a durable index: with a 1-byte budget, the first logged writes since
// the initial checkpoint degrade the rule (and flip /health to 503);
// the next checkpoint resets the gauges and the rule recovers.
func TestHealthWALGrowthDegrades(t *testing.T) {
	dir := t.TempDir()
	ix, err := adaptix.Open(dir,
		adaptix.WithValues(seqValues(1024)),
		adaptix.WithNoSync(),
		adaptix.WithLogWrites(),
		adaptix.WithCheckpointEvery(1_000_000),
		adaptix.WithHealth(adaptix.HealthOptions{Interval: -1, MaxWALBytes: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ctx := context.Background()
	for i := int64(0); i < 64; i++ {
		if err := ix.Insert(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	rep := ix.Health()
	if rep.OK() {
		t.Fatalf("report ok despite WAL growth over a 1-byte budget: %+v", rep)
	}
	var walRule adaptix.HealthRule
	for _, r := range rep.Rules {
		if r.Rule == "wal-since-checkpoint" {
			walRule = r
		} else if r.Status != adaptix.HealthOK {
			t.Fatalf("unrelated rule degraded: %+v", r)
		}
	}
	if walRule.Status != adaptix.HealthDegraded || walRule.Reason == "" {
		t.Fatalf("wal rule = %+v, want degraded with reason", walRule)
	}
	if code, _ := getJSON(t, ix, "/health"); code != 503 {
		t.Fatalf("/health status %d while degraded, want 503", code)
	}

	if !ix.Checkpoint() {
		t.Fatal("checkpoint failed")
	}
	if rep := ix.Health(); !rep.OK() {
		t.Fatalf("report still degraded after checkpoint reset: %+v", rep)
	}
	if code, _ := getJSON(t, ix, "/health"); code != 200 {
		t.Fatal("/health did not recover to 200")
	}
}

// TestHealthConvergenceStagnation runs the workload the stagnation
// rule exists for: a strictly sequential scan of the key space over a
// cracked index. Every query cracks the predicate's fringe off the one
// big unrefined piece, so rows touched per query barely decays, and
// the convergence-stagnation rule must fire.
func TestHealthConvergenceStagnation(t *testing.T) {
	const n = 50_000
	ix, err := adaptix.New(seqValues(n),
		adaptix.WithShards(1), // one latch domain: the paper's original setting
		adaptix.WithHealth(adaptix.HealthOptions{Interval: -1, StagnationWindows: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ctx := context.Background()
	// 512 queries fill two convergence windows; each touches the
	// ~n-sized unrefined tail, so the series stays flat near n.
	for i := int64(0); i < 512; i++ {
		if _, err := ix.Count(ctx, i*10, i*10+10); err != nil {
			t.Fatal(err)
		}
	}
	rep := ix.Health()
	var conv adaptix.HealthRule
	for _, r := range rep.Rules {
		if r.Rule == "convergence-stagnation" {
			conv = r
		}
	}
	if conv.Status != adaptix.HealthDegraded {
		t.Fatalf("sequential workload did not trip stagnation: %+v (series %v)",
			conv, ix.Stats().Convergence.Series)
	}
	if conv.Evidence["late_mean_rows"] < 4096 {
		t.Fatalf("late mean %d too low to have been a real stagnation", conv.Evidence["late_mean_rows"])
	}
	if code, _ := getJSON(t, ix, "/health"); code != 503 {
		t.Fatal("/health not 503 under stagnation")
	}

	// Contrast: the same index under a uniform workload converges —
	// the series decays and the rule clears only once the late half
	// genuinely drops (regression guard for the 80% decay test).
	cs := ix.Stats().Convergence
	if len(cs.Series) < 2 || cs.Series[len(cs.Series)-1] < 4096 {
		t.Fatalf("series %v inconsistent with the degraded verdict", cs.Series)
	}
}

// TestConvergenceStatsPopulated checks the Stats().Convergence readout
// end to end: touched quantiles, the covered-aggregate hit rate, and
// the per-shard piece profile in ShardStats.
func TestConvergenceStatsPopulated(t *testing.T) {
	ix, err := adaptix.New(seqValues(8192), adaptix.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()
	// Broad queries: middle shards are fully covered by the predicate
	// and answered from aggregates.
	for i := int64(0); i < 40; i++ {
		if _, err := ix.Sum(ctx, 10+i, 8000+i); err != nil {
			t.Fatal(err)
		}
	}
	cs := ix.Stats().Convergence
	if cs.Queries != 40 {
		t.Fatalf("Convergence.Queries = %d, want 40", cs.Queries)
	}
	if cs.TouchedP99 <= 0 {
		t.Fatal("TouchedP99 not populated")
	}
	if cs.Covered == 0 || cs.CoveredFrac <= 0 || cs.CoveredFrac >= 1 {
		t.Fatalf("covered-aggregate stats = %d/%d frac %.2f, want partial coverage",
			cs.Covered, cs.Visits, cs.CoveredFrac)
	}
	for _, s := range ix.Stats().Shards {
		if s.Pieces > 1 && (s.MaxPieceFrac <= 0 || s.MaxPieceFrac > 1) {
			t.Fatalf("shard %d piece profile out of range: %+v", s.Shard, s)
		}
		if s.Pieces > 1 && s.PieceEntropy < 0 || s.PieceEntropy > 1 {
			t.Fatalf("shard %d entropy %f out of [0,1]", s.Shard, s.PieceEntropy)
		}
	}
}

// TestRecoveryStatsExposed checks the recovery-time breakdown: zero
// for in-memory indexes, populated after a durable reopen.
func TestRecoveryStatsExposed(t *testing.T) {
	mem, err := adaptix.New(seqValues(128))
	if err != nil {
		t.Fatal(err)
	}
	if bd := mem.RecoveryStats(); bd != (adaptix.RecoveryBreakdown{}) {
		t.Fatalf("in-memory RecoveryStats = %+v, want zero", bd)
	}
	mem.Close()

	dir := t.TempDir()
	ix, err := adaptix.Open(dir, adaptix.WithValues(seqValues(2048)), adaptix.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := int64(0); i < 20; i++ {
		if _, err := ix.Count(ctx, i*50, i*50+100); err != nil {
			t.Fatal(err)
		}
	}
	ix.Checkpoint()
	ix.Close()

	ix, err = adaptix.Open(dir, adaptix.WithNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if !ix.Recovered() {
		t.Fatal("reopen did not recover")
	}
	bd := ix.RecoveryStats()
	if bd.CheckpointLoad <= 0 || bd.WALScan <= 0 || bd.Replay <= 0 {
		t.Fatalf("recovered breakdown not populated: %+v", bd)
	}
}
