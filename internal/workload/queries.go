package workload

import "math"

// QueryKind distinguishes the two query templates of the paper's §6:
//
//	Q1: select count(*) from R where v1 < A < v2
//	Q2: select sum(A)   from R where v1 < A < v2
type QueryKind int

const (
	// Count is query type Q1: only selection/cracking work.
	Count QueryKind = iota
	// Sum is query type Q2: selection/cracking plus an aggregation
	// that must read every qualifying value.
	Sum
)

// String returns the query template's display name.
func (k QueryKind) String() string {
	switch k {
	case Count:
		return "count"
	case Sum:
		return "sum"
	default:
		return "unknown"
	}
}

// Query is one range query over the indexed column. Bounds are
// half-open: the qualifying values v satisfy Lo <= v < Hi.
type Query struct {
	Kind QueryKind
	Lo   int64
	Hi   int64
}

// Generator produces a deterministic stream of range queries.
type Generator interface {
	// Next returns the next query in the stream.
	Next() Query
}

// UniformGenerator produces random range queries of a fixed selectivity
// over the whole domain, the workload of the paper's Figures 11-15:
// "random range queries with a stable X% selectivity".
type UniformGenerator struct {
	rng    *RNG
	kind   QueryKind
	domain int64
	width  int64
}

// NewUniform returns a generator of kind queries over [0, domain) whose
// ranges each cover selectivity (in (0,1]) of the domain.
func NewUniform(kind QueryKind, domain int64, selectivity float64, seed uint64) *UniformGenerator {
	if selectivity <= 0 || selectivity > 1 {
		panic("workload: selectivity must be in (0, 1]")
	}
	w := int64(selectivity * float64(domain))
	if w < 1 {
		w = 1
	}
	if w > domain {
		w = domain
	}
	return &UniformGenerator{rng: NewRNG(seed), kind: kind, domain: domain, width: w}
}

// Next returns the next random range query.
func (g *UniformGenerator) Next() Query {
	maxLo := g.domain - g.width
	var lo int64
	if maxLo > 0 {
		lo = g.rng.Int64n(maxLo + 1)
	}
	return Query{Kind: g.kind, Lo: lo, Hi: lo + g.width}
}

// SequentialGenerator sweeps the domain left to right with fixed-width
// ranges, a worst case for adaptive indexing benchmarking [11] because
// every query touches a previously uncracked region.
type SequentialGenerator struct {
	kind   QueryKind
	domain int64
	width  int64
	next   int64
}

// NewSequential returns a sweeping generator with the given selectivity.
func NewSequential(kind QueryKind, domain int64, selectivity float64) *SequentialGenerator {
	w := int64(selectivity * float64(domain))
	if w < 1 {
		w = 1
	}
	return &SequentialGenerator{kind: kind, domain: domain, width: w}
}

// Next returns the next range in the sweep, wrapping at the domain end.
func (g *SequentialGenerator) Next() Query {
	lo := g.next
	if lo+g.width > g.domain {
		lo = 0
	}
	g.next = lo + g.width
	return Query{Kind: g.kind, Lo: lo, Hi: lo + g.width}
}

// PeriodicGenerator alternates between W distinct focus windows,
// spending burst queries in each before moving on, and cycling back —
// the "periodic" pattern of the adaptive-indexing benchmark [11]. It
// stresses how quickly the index re-converges when the workload focus
// returns to a previously optimized region.
type PeriodicGenerator struct {
	rng     *RNG
	kind    QueryKind
	domain  int64
	width   int64
	windows int64
	burst   int
	issued  int
	window  int64
}

// NewPeriodic returns a periodic generator with the given number of
// focus windows and queries per burst.
func NewPeriodic(kind QueryKind, domain int64, selectivity float64, windows int64, burst int, seed uint64) *PeriodicGenerator {
	if windows < 1 {
		windows = 1
	}
	if burst < 1 {
		burst = 1
	}
	w := int64(selectivity * float64(domain))
	if w < 1 {
		w = 1
	}
	return &PeriodicGenerator{
		rng: NewRNG(seed), kind: kind, domain: domain, width: w,
		windows: windows, burst: burst,
	}
}

// Next returns the next query, drawn uniformly inside the current
// focus window.
func (g *PeriodicGenerator) Next() Query {
	if g.issued >= g.burst {
		g.issued = 0
		g.window = (g.window + 1) % g.windows
	}
	g.issued++
	winSize := g.domain / g.windows
	base := g.window * winSize
	maxLo := winSize - g.width
	var lo int64
	if maxLo > 0 {
		lo = g.rng.Int64n(maxLo + 1)
	}
	lo += base
	if lo+g.width > g.domain {
		lo = g.domain - g.width
	}
	return Query{Kind: g.kind, Lo: lo, Hi: lo + g.width}
}

// ShiftingGenerator draws random ranges from a focus window that
// slowly slides across the domain — the benchmark's [11] drifting
// workload, between fully random and strictly sequential.
type ShiftingGenerator struct {
	rng    *RNG
	kind   QueryKind
	domain int64
	width  int64
	win    int64
	step   int64
	start  int64
}

// NewShifting returns a generator whose window of winFrac of the
// domain slides by step values per query.
func NewShifting(kind QueryKind, domain int64, selectivity, winFrac float64, step int64, seed uint64) *ShiftingGenerator {
	w := int64(selectivity * float64(domain))
	if w < 1 {
		w = 1
	}
	win := int64(winFrac * float64(domain))
	if win < w {
		win = w
	}
	return &ShiftingGenerator{
		rng: NewRNG(seed), kind: kind, domain: domain, width: w, win: win, step: step,
	}
}

// Next returns the next query from the sliding window.
func (g *ShiftingGenerator) Next() Query {
	maxLo := g.win - g.width
	var off int64
	if maxLo > 0 {
		off = g.rng.Int64n(maxLo + 1)
	}
	lo := (g.start + off) % (g.domain - g.width + 1)
	g.start = (g.start + g.step) % g.domain
	return Query{Kind: g.kind, Lo: lo, Hi: lo + g.width}
}

// ZipfGenerator produces range queries whose low bounds cluster on a
// hot region of the domain according to a zipf-like distribution. Used
// for the skewed-workload ablation: the more a key range is queried,
// the more it is optimized (paper §1).
type ZipfGenerator struct {
	rng     *RNG
	kind    QueryKind
	domain  int64
	width   int64
	zipfExp float64
	buckets int
}

// NewZipf returns a skewed generator; exponent ~1.0 gives classic zipf
// weighting across 64 buckets of the domain.
func NewZipf(kind QueryKind, domain int64, selectivity, exponent float64, seed uint64) *ZipfGenerator {
	w := int64(selectivity * float64(domain))
	if w < 1 {
		w = 1
	}
	return &ZipfGenerator{
		rng: NewRNG(seed), kind: kind, domain: domain, width: w,
		zipfExp: exponent, buckets: 64,
	}
}

// Next returns the next skewed range query.
func (g *ZipfGenerator) Next() Query {
	// Pick a bucket with probability proportional to 1/(rank^exp) using
	// inverse-CDF over the precomputable harmonic weights; for 64 buckets
	// a linear scan is cheap and allocation free.
	var total float64
	for i := 1; i <= g.buckets; i++ {
		total += 1 / pow(float64(i), g.zipfExp)
	}
	u := g.rng.Float64() * total
	bucket := 0
	var acc float64
	for i := 1; i <= g.buckets; i++ {
		acc += 1 / pow(float64(i), g.zipfExp)
		if u <= acc {
			bucket = i - 1
			break
		}
	}
	bWidth := g.domain / int64(g.buckets)
	lo := int64(bucket)*bWidth + g.rng.Int64n(maxi64(bWidth, 1))
	if lo+g.width > g.domain {
		lo = g.domain - g.width
	}
	if lo < 0 {
		lo = 0
	}
	return Query{Kind: g.kind, Lo: lo, Hi: lo + g.width}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// Fixed returns a slice of n queries pre-drawn from g. Pre-drawing lets
// concurrent clients share one deterministic sequence, mirroring the
// paper's "for every run we use exactly the same queries and in the
// same order".
func Fixed(g Generator, n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = g.Next()
	}
	return qs
}
