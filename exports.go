package adaptix

import (
	"context"

	"adaptix/internal/amerge"
	"adaptix/internal/column"
	"adaptix/internal/cracker"
	"adaptix/internal/crackindex"
	"adaptix/internal/durable"
	"adaptix/internal/engine"
	"adaptix/internal/epoch"
	"adaptix/internal/harness"
	"adaptix/internal/health"
	"adaptix/internal/hybrid"
	"adaptix/internal/ingest"
	"adaptix/internal/latch"
	"adaptix/internal/lockmgr"
	"adaptix/internal/metrics"
	"adaptix/internal/shard"
	"adaptix/internal/sideways"
	"adaptix/internal/txn"
	"adaptix/internal/wal"
	"adaptix/internal/wcapture"
	"adaptix/internal/workload"
)

// Result is one query's outcome and cost breakdown (wait vs refine
// time, fan-out critical path, epoch depth, conflict counters).
type Result = engine.Result

// Op is one batched write operation (Index.Apply).
type Op = ingest.Op

// Method-specific option structs, consumed by WithCrackOptions /
// WithMergeOptions / WithHybridOptions.
type (
	// CrackOptions configures latching mode, layout, scheduling,
	// conflict policy and optimizations of the per-shard cracked
	// indexes (Crack method).
	CrackOptions = crackindex.Options
	// MergeOptions configures run size, merge budget and conflict
	// policy of the per-shard adaptive-merging indexes (AMerge method).
	MergeOptions = amerge.Options
	// HybridOptions configures partition size, layout and conflict
	// policy of the per-shard hybrid crack-sort indexes (Hybrid
	// method).
	HybridOptions = hybrid.Options
	// IngestOptions configures the write path (WithIngestOptions):
	// group-apply thresholds, rebalancing factors, structural logging,
	// and the transaction manager.
	IngestOptions = ingest.Options
)

// Observability types surfaced by Index.Stats.
type (
	// ShardStat is a per-shard refinement-state snapshot (rows, pieces,
	// cracks, conflicts, epoch-chain depth).
	ShardStat = shard.ShardStat
	// EpochStat is an observability snapshot of one differential epoch
	// file (id, pending counts, sealed flag).
	EpochStat = epoch.Stat
	// IngestStats counts the write path's routed writes and structural
	// operations.
	IngestStats = ingest.Stats
	// OpStats is the merged per-operation cost breakdown of the
	// internal aggregate surface (most callers want Result instead).
	OpStats = crackindex.OpStats
	// TraceEvent is a latch/crack trace record (Figure 8 timelines),
	// delivered to CrackOptions.Tracer.
	TraceEvent = crackindex.TraceEvent
	// ObsStats is the quantile readout of the always-on latency
	// histograms (Stats.Obs, and the endpoint's /snapshot document).
	ObsStats = metrics.ObsSummary
	// FlightEvent is one flight-recorder entry: a sampled query span,
	// a stall (latch wait or writer park over the threshold), a
	// structural operation, or a health-rule transition
	// (Index.FlightDump, the endpoint's /flight).
	FlightEvent = metrics.Event
	// HeatSnapshot is the key-range access heatmap readout: per-bucket
	// read and write counts over the index's key domain
	// (ObsSnapshot.Heatmap; HeatSnapshot.Slice gives per-shard views).
	HeatSnapshot = metrics.HeatSnapshot
	// RecoveryBreakdown is the wall-clock cost of the three Open
	// phases: checkpoint-snapshot load, structural-WAL scan, and column
	// rebuild (Index.RecoveryStats).
	RecoveryBreakdown = durable.RecoveryBreakdown
)

// Workload capture & replay (WithWorkloadCapture, Index.Workload,
// WorkloadTrace, ReplayTrace, the endpoint's /workload route, and
// cmd/adaptixreplay).
type (
	// WorkloadStats is the live workload signature: read/write mix,
	// selectivity and width quantiles, inter-query key locality, and
	// the sequentiality score (Stats.Workload, the /workload route).
	WorkloadStats = wcapture.Signature
	// WorkloadRecord is one captured workload record: a query with its
	// bounds, tag, and answer checksum, or a routed write
	// (Index.WorkloadTrace, ReadWorkloadTrace).
	WorkloadRecord = wcapture.Record
	// ReplayOptions configures ReplayTrace: pacing against the capture
	// timestamps and checksum verification.
	ReplayOptions = wcapture.ReplayOptions
	// ReplayReport summarizes one replay run: records executed,
	// read/write split, mismatches, and throughput.
	ReplayReport = wcapture.Report
	// ReplayMismatch is one replay divergence: a record whose
	// re-executed result differed from the capture-time checksum.
	ReplayMismatch = wcapture.Mismatch
)

// Health watchdog (WithHealth, Index.Health, the endpoint's /health).
type (
	// HealthOptions tunes the watchdog's rule thresholds and its
	// background evaluation interval (WithHealth).
	HealthOptions = health.Options
	// HealthReport is one full watchdog evaluation: an overall verdict
	// plus every rule's status, reason, and evidence values.
	HealthReport = health.Report
	// HealthRule is one rule's verdict inside a HealthReport.
	HealthRule = health.RuleResult
	// HealthStatus is a rule or report verdict (HealthOK or
	// HealthDegraded).
	HealthStatus = health.Status
)

// Health verdicts.
const (
	// HealthOK means the rule's (or every rule's) thresholds hold.
	HealthOK = health.OK
	// HealthDegraded means the rule fired; the report carries evidence.
	HealthDegraded = health.Degraded
)

// Latching modes (paper §5.3), for CrackOptions.Latching.
const (
	// LatchPiece: one latch per array piece — the finest granularity.
	LatchPiece = crackindex.LatchPiece
	// LatchColumn: one latch per column.
	LatchColumn = crackindex.LatchColumn
	// LatchNone: no concurrency control (single-threaded only).
	LatchNone = crackindex.LatchNone
)

// Conflict policies for optional refinement (CrackOptions.OnConflict).
const (
	// WaitOnConflict blocks until the latch is free.
	WaitOnConflict = crackindex.Wait
	// SkipOnConflict forgoes the optional refinement (conflict
	// avoidance, §3.3).
	SkipOnConflict = crackindex.Skip
)

// Cracker-array layouts (Figure 7), for CrackOptions.Layout.
const (
	// LayoutSplit stores rowIDs and values as a pair of arrays.
	LayoutSplit = cracker.LayoutSplit
	// LayoutPairs stores an array of rowID-value pairs.
	LayoutPairs = cracker.LayoutPairs
)

// Waiting-crack scheduling policies (§5.3), for CrackOptions.Scheduling.
const (
	// MiddleFirst wakes the median-bound waiter first.
	MiddleFirst = latch.MiddleFirst
	// FIFO wakes waiters in arrival order.
	FIFO = latch.FIFO
)

// WithQueryTag returns a context carrying a query tag: trace events
// emitted while serving a query with this context are labelled with
// the tag (the Figure 8 timeline labels). The tag rides the context
// through the fan-out executor, so it works for any shard count.
func WithQueryTag(ctx context.Context, tag string) context.Context {
	return crackindex.WithTag(ctx, tag)
}

// Sideways cracking (reference [22]; §5 "Other Adaptive Indexing
// Methods").
type (
	// SidewaysMap is a cracker map M(head, tail): aligned selection
	// and projection values reorganized together, so refined ranges
	// aggregate without positional fetches.
	SidewaysMap = sideways.Map
	// SidewaysOptions configures the map's conflict policy.
	SidewaysOptions = sideways.Options
)

// NewSidewaysMap creates a cracker map over aligned head/tail columns.
func NewSidewaysMap(head, tail []int64, opts SidewaysOptions) *SidewaysMap {
	return sideways.NewMap(head, tail, opts)
}

// Column-store kernel (paper §5.1, Figure 6).
type (
	// Table is a set of aligned dense columns.
	Table = column.Table
	// Executor evaluates bulk operator-at-a-time plans with cracking
	// selects.
	Executor = column.Executor
)

// NewTable creates an empty column-store table.
func NewTable(name string) *Table { return column.NewTable(name) }

// NewExecutor creates a plan executor over tab.
func NewExecutor(tab *Table, opts CrackOptions) *Executor {
	return column.NewExecutor(tab, opts)
}

// Workload generation (paper §6 set-up).
type (
	// Query is one range query (Lo <= A < Hi).
	Query = workload.Query
	// Dataset is a generated base column.
	Dataset = workload.Dataset
)

// Query kinds.
const (
	// CountQuery is Q1: select count(*) where v1 < A < v2.
	CountQuery = workload.Count
	// SumQuery is Q2: select sum(A) where v1 < A < v2.
	SumQuery = workload.Sum
)

// NewUniqueDataset builds n unique integers 0..n-1 in random order.
func NewUniqueDataset(n int, seed uint64) *Dataset {
	return workload.NewUniqueUniform(n, seed)
}

// UniformQueries draws n random range queries of the given kind and
// selectivity over [0, domain).
func UniformQueries(kind workload.QueryKind, domain int64, selectivity float64, seed uint64, n int) []Query {
	return workload.Fixed(workload.NewUniform(kind, domain, selectivity, seed), n)
}

// RunResult is the outcome of a (possibly concurrent) experiment run.
type RunResult = harness.Run

// Run drives the index with the query sequence split across the given
// number of concurrent clients, as in the paper's experiments.
func Run(ix *Index, queries []Query, clients int) *RunResult {
	return harness.Execute(ix.eng, queries, clients)
}

// Transactions and locks (paper §3, Table 1).
type (
	// TxnManager creates user and system transactions.
	TxnManager = txn.Manager
	// Txn is one transaction.
	Txn = txn.Txn
	// LockMode is a transactional lock mode (IS, IX, S, SIX, U, X).
	LockMode = lockmgr.Mode
	// StructuralLog is the write-ahead log for structural operations.
	StructuralLog = wal.Log
)

// Lock modes.
const (
	IS  = lockmgr.IS
	IX  = lockmgr.IX
	SLk = lockmgr.S
	SIX = lockmgr.SIX
	ULk = lockmgr.U
	XLk = lockmgr.X
)

// NewTxnManager returns a transaction manager with a fresh lock
// manager.
func NewTxnManager() *TxnManager { return txn.NewManager() }

// Durable WAL sink (custom structural-log setups; Open wires one up
// automatically).
type (
	// WALFileSink is the durable segment-file sink of the structural
	// WAL: CRC-framed records, fsync-on-commit, segment rotation, and
	// checkpoint truncation.
	WALFileSink = wal.FileSink
	// WALSinkOptions configures a WALFileSink.
	WALSinkOptions = wal.SinkOptions
)

// NewWALFileSink opens a segment-file sink over dir for a structural
// log (see WALFileSink).
func NewWALFileSink(dir string, opts WALSinkOptions) (*WALFileSink, error) {
	return wal.NewFileSink(dir, opts)
}

// SinkOption configures NewStructuralLog.
type SinkOption func(*sinkConfig)

type sinkConfig struct {
	sink *wal.FileSink
}

// WithSink makes the structural log write every record through the
// given durable sink, fsyncing on system-transaction commits. Without
// it the log is in-memory only.
func WithSink(sink *WALFileSink) SinkOption {
	return func(c *sinkConfig) { c.sink = sink }
}

// NewStructuralLog returns a structural WAL: in-memory by default,
// durable when configured with WithSink.
func NewStructuralLog(opts ...SinkOption) *StructuralLog {
	var c sinkConfig
	for _, o := range opts {
		o(&c)
	}
	if c.sink == nil {
		return wal.New(nil)
	}
	return wal.New(c.sink)
}
