package txn

import (
	"errors"
	"strings"
	"testing"

	"adaptix/internal/crackindex"
	"adaptix/internal/lockmgr"
	"adaptix/internal/workload"
)

func TestLifecycle(t *testing.T) {
	m := NewManager()
	u := m.Begin(User)
	if u.Kind() != User || u.State() != Active {
		t.Fatalf("bad fresh txn: %v", u)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if u.State() != Committed {
		t.Fatal("not committed")
	}
	if err := u.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit: %v", err)
	}
	if err := u.Lock("r", lockmgr.S); !errors.Is(err, ErrNotActive) {
		t.Fatalf("lock after commit: %v", err)
	}
	a := m.Begin(User)
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if a.State() != Aborted {
		t.Fatal("not aborted")
	}
	started, finished := m.Counts()
	if started != 2 || finished != 2 {
		t.Fatalf("counts = %d,%d", started, finished)
	}
}

func TestUserLocksReleasedOnFinish(t *testing.T) {
	m := NewManager()
	u := m.Begin(User)
	if err := u.Lock("R.A", lockmgr.X); err != nil {
		t.Fatal(err)
	}
	if !m.Locks().HasConflicting("R.A", lockmgr.S, 0) {
		t.Fatal("lock not visible")
	}
	if err := u.Abort(); err != nil {
		t.Fatal(err)
	}
	if m.Locks().HasConflicting("R.A", lockmgr.S, 0) {
		t.Fatal("lock survived abort")
	}
}

func TestSystemTransactionsMustNotLock(t *testing.T) {
	m := NewManager()
	s := m.Begin(System)
	if err := s.Lock("r", lockmgr.S); err == nil {
		t.Fatal("system txn acquired a lock")
	}
	if err := s.LockHierarchy([]string{"a", "b"}, lockmgr.S); err == nil {
		t.Fatal("system txn acquired hierarchy locks")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSystemInstantCommit(t *testing.T) {
	m := NewManager()
	var inside State
	err := m.RunSystem(func(st *Txn) error {
		inside = st.State()
		if st.Kind() != System {
			t.Fatal("not a system txn")
		}
		return nil
	})
	if err != nil || inside != Active {
		t.Fatalf("RunSystem: err=%v inside=%v", err, inside)
	}
	err = m.RunSystem(func(st *Txn) error { return errors.New("boom") })
	if err == nil {
		t.Fatal("error swallowed")
	}
	started, finished := m.Counts()
	if started != 2 || finished != 2 {
		t.Fatalf("counts = %d,%d", started, finished)
	}
}

func TestRunSystemPanicAborts(t *testing.T) {
	m := NewManager()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		_ = m.RunSystem(func(st *Txn) error { panic("kaboom") })
	}()
	_, finished := m.Counts()
	if finished != 1 {
		t.Fatal("panicking system txn not finished")
	}
}

func TestHierarchicalLockingViaTxn(t *testing.T) {
	m := NewManager()
	u := m.Begin(User)
	if err := u.LockHierarchy([]string{"db", "db/R", "db/R/A"}, lockmgr.X); err != nil {
		t.Fatal(err)
	}
	held := m.Locks().HeldModes(u.ID())
	if held["db"] != lockmgr.IX || held["db/R/A"] != lockmgr.X {
		t.Fatalf("bad modes: %v", held)
	}
	u.Commit()
}

// TestRefinementProbeIntegration wires the probe into a cracked-column
// index: while a user transaction holds X on the column, refinement is
// skipped; after commit, refinement resumes. This is the paper's §3.3
// verification step end-to-end.
func TestRefinementProbeIntegration(t *testing.T) {
	m := NewManager()
	d := workload.NewUniqueUniform(10000, 3)
	ix := crackindex.New(d.Values, crackindex.Options{
		Latching:  crackindex.LatchPiece,
		LockProbe: m.RefinementProbe("R.A"),
	})

	u := m.Begin(User)
	if err := u.Lock("R.A", lockmgr.X); err != nil {
		t.Fatal(err)
	}
	n, st := ix.Count(100, 900)
	if n != 800 {
		t.Fatalf("Count = %d", n)
	}
	if !st.Skipped || ix.Stats().Cracks.Load() != 0 {
		t.Fatal("refinement not skipped under conflicting user lock")
	}

	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	n, st = ix.Count(100, 900)
	if n != 800 || st.Skipped {
		t.Fatalf("post-commit query wrong: n=%d skipped=%v", n, st.Skipped)
	}
	if ix.Stats().Cracks.Load() == 0 {
		t.Fatal("refinement did not resume after commit")
	}
}

// TestRollbackKeepsRefinement: index optimization achieved inside an
// (eventually aborted) user transaction's thread is NOT reversed —
// structure is independent of contents (paper §3).
func TestRollbackKeepsRefinement(t *testing.T) {
	m := NewManager()
	d := workload.NewUniqueUniform(10000, 4)
	ix := crackindex.New(d.Values, crackindex.Options{
		Latching:  crackindex.LatchPiece,
		LockProbe: m.RefinementProbe("R.A"),
	})
	u := m.Begin(User) // holds no locks: queries at read-committed
	var err error
	_ = err
	if n, _ := ix.Count(2000, 5000); n != 3000 {
		t.Fatal("count wrong")
	}
	cracksBefore := ix.Stats().Cracks.Load()
	if cracksBefore == 0 {
		t.Fatal("no refinement happened")
	}
	if err := u.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().Cracks.Load(); got != cracksBefore {
		t.Fatal("abort changed the index")
	}
	if p := ix.NumPieces(); p < 2 {
		t.Fatalf("pieces lost after abort: %d", p)
	}
	// And the index still answers correctly.
	if n, _ := ix.Count(2000, 5000); n != 3000 {
		t.Fatal("count wrong after abort")
	}
}

func TestSavepointRollbackViaTxn(t *testing.T) {
	m := NewManager()
	u := m.Begin(User)
	if err := u.Lock("a", lockmgr.X); err != nil {
		t.Fatal(err)
	}
	sp, err := u.Savepoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Lock("b", lockmgr.X); err != nil {
		t.Fatal(err)
	}
	if err := u.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	held := m.Locks().HeldModes(u.ID())
	if len(held) != 1 || held["a"] != lockmgr.X {
		t.Fatalf("held after partial rollback: %v", held)
	}
	// The transaction is still active and can continue.
	if err := u.Lock("c", lockmgr.S); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	// System transactions have no savepoints.
	s := m.Begin(System)
	if _, err := s.Savepoint(); err == nil {
		t.Fatal("system savepoint accepted")
	}
	if err := s.RollbackTo(0); err == nil {
		t.Fatal("system rollback accepted")
	}
	s.Commit()
}

func TestStrings(t *testing.T) {
	if User.String() != "user" || System.String() != "system" {
		t.Fatal("bad Kind strings")
	}
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Fatal("bad State strings")
	}
	m := NewManager()
	u := m.Begin(User)
	if s := u.String(); !strings.Contains(s, "user") || !strings.Contains(s, "active") {
		t.Fatalf("txn String = %q", s)
	}
}
